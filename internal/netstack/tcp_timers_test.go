package netstack

import (
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
)

func TestPersistProbeRecoversLostWindowUpdate(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()

	// Fill the receiver's window completely.
	payload := make([]byte, 100000)
	cli.Send(payload)
	n.RunUntilIdle()
	n.Tick(0.01)
	if cli.pcb.sndWnd > 0 && len(cli.pcb.sndBuf) == 0 {
		t.Skip("window never closed; nothing to probe")
	}

	// The receiver drains, but its window-update ACK is lost.
	lose := true
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipA && lose {
			lose = false
			return true
		}
		return false
	}
	buf := make([]byte, tcpWindow)
	srv.Recv(buf) // triggers (and loses) the window update
	n.RunUntilIdle()

	if cli.pcb.sndWnd > 0 {
		t.Fatal("sender already saw the window reopen; loss injection failed")
	}
	// The persist timer must unstick the connection.
	n.Loss = nil
	total := tcpWindow
	for i := 0; i < 400 && total < len(payload); i++ {
		n.Tick(0.6)
		for {
			nr := srv.Recv(buf)
			if nr == 0 {
				break
			}
			total += nr
		}
	}
	if total != len(payload) {
		t.Errorf("received %d of %d after persist probing", total, len(payload))
	}
	if a.Counters.WindowProbes == 0 {
		t.Error("no window probes recorded")
	}
}

func TestTimeWaitHoldsThenReaps(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()

	cli.Close()
	n.RunUntilIdle()
	srv.Close()
	n.RunUntilIdle()

	if cli.State() != "time-wait" {
		t.Fatalf("active closer state = %s, want time-wait", cli.State())
	}
	if a.findPCB(cli.pcb.tuple) == nil {
		t.Fatal("TIME-WAIT pcb should still be tracked")
	}
	// Before 2MSL: still present. After: reaped.
	n.Tick(0.4)
	if cli.State() != "time-wait" {
		t.Errorf("state after 0.4s = %s, want time-wait (2MSL=1s)", cli.State())
	}
	n.Tick(1.0)
	if cli.State() != "closed" {
		t.Errorf("state after 2MSL = %s, want closed", cli.State())
	}
	if a.findPCB(cli.pcb.tuple) != nil {
		t.Error("pcb not reaped after 2MSL")
	}
}

func TestTimeWaitReAcksRetransmittedFin(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()

	// Lose the client's final ACK of the server's FIN, so the server
	// retransmits its FIN into the client's TIME-WAIT.
	cli.Close()
	n.RunUntilIdle() // client FIN-WAIT-2, server CLOSE-WAIT
	lost := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipB && lost == 0 {
			lost++
			return true
		}
		return false
	}
	srv.Close() // server FIN; client's ACK will be dropped
	n.RunUntilIdle()
	n.Loss = nil
	if cli.State() != "time-wait" {
		t.Fatalf("client state = %s, want time-wait", cli.State())
	}
	if srv.State() != "last-ack" {
		t.Fatalf("server state = %s, want last-ack (its FIN unACKed)", srv.State())
	}
	// Server's RTO fires, retransmits FIN; client re-ACKs from TIME-WAIT.
	n.Tick(0.25)
	n.Tick(0.25)
	if srv.State() != "closed" {
		t.Errorf("server state after FIN retransmit = %s, want closed", srv.State())
	}
}

func TestListenerBacklogLimit(t *testing.T) {
	n := NewNet()
	srvHost := n.AddHost("srv", ipB, DefaultOptions(core.Conventional))
	l, _ := srvHost.ListenTCP(80)
	// More dialers than the backlog allows.
	for i := 0; i < tcpBacklog+5; i++ {
		h := n.AddHost("c", layers.IPAddr{10, 5, 0, byte(i + 1)}, DefaultOptions(core.Conventional))
		h.DialTCP(ipB, 80)
	}
	n.RunUntilIdle()
	if l.DroppedCount() != 5 {
		t.Errorf("backlog drops = %d, want 5", l.DroppedCount())
	}
	accepted := 0
	for l.Accept() != nil {
		accepted++
	}
	if accepted != tcpBacklog {
		t.Errorf("accepted = %d, want %d", accepted, tcpBacklog)
	}
}

func TestHalfCloseStillDeliversData(t *testing.T) {
	// Client closes its sending side (FIN); the server may keep sending —
	// the classic half-close. Our client in FIN-WAIT-2 must still accept
	// and deliver data.
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()

	cli.Close()
	n.RunUntilIdle()
	if cli.State() != "fin-wait-2" {
		t.Fatalf("client state = %s, want fin-wait-2", cli.State())
	}
	if srv.State() != "close-wait" {
		t.Fatalf("server state = %s, want close-wait", srv.State())
	}
	// Server sends into the half-open connection.
	if err := srv.Send([]byte("parting words")); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	buf := make([]byte, 64)
	nr := cli.Recv(buf)
	if string(buf[:nr]) != "parting words" {
		t.Errorf("half-close delivery = %q", buf[:nr])
	}
	srv.Close()
	n.RunUntilIdle()
	n.Tick(2.5)
	if cli.State() != "closed" || srv.State() != "closed" {
		t.Errorf("final states: %s / %s", cli.State(), srv.State())
	}
}

func TestSimultaneousClose(t *testing.T) {
	// Both ends close before seeing the other's FIN: both sides are in
	// FIN-WAIT-1 when the crossing FINs arrive, and both must reach
	// closed via TIME-WAIT without deadlock.
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()

	// Close both ends without pumping in between: the FINs cross.
	cli.Close()
	srv.Close()
	n.RunUntilIdle()
	okStates := map[string]bool{"time-wait": true, "closed": true}
	if !okStates[cli.State()] || !okStates[srv.State()] {
		t.Fatalf("after crossing FINs: %s / %s", cli.State(), srv.State())
	}
	n.Tick(1.5)
	n.Tick(1.5)
	if cli.State() != "closed" || srv.State() != "closed" {
		t.Errorf("final states: %s / %s", cli.State(), srv.State())
	}
	if a.numPCBs() != 0 || b.numPCBs() != 0 {
		t.Errorf("pcbs leaked: %d / %d", a.numPCBs(), b.numPCBs())
	}
	checkNoLeaks(t)
}
