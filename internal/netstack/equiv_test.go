package netstack

// Differential equivalence suite for the sharded transport path: the
// same seeded workload — TCP small-message mixes, UDP including
// fragmented datagrams, stray sends, pings — is driven through a server
// at RxShards=1 and RxShards=N, and the observable outcomes must match:
// byte-identical per-connection streams in both directions, identical
// per-flow datagram sequences, an identical drop-reason ledger, and
// per-shard transport counters that merge to the same totals. Together
// with the shardaffinity analyzer (which proves transport state is only
// touched from its owning shard) this is the proof that sharding the
// data path changed its performance and nothing else.
//
// Two deliberate exclusions from the ledger: PCBCacheHits/Misses (the
// one-entry PCB cache is per shard, so its hit pattern legitimately
// depends on the shard count) and TxBatches/TxMaxBatch (batch
// composition depends on how flows interleave across shard queues).
// Everything else — every frame, every drop reason, every ACK — must be
// bit-for-bit equal.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/dispatch"
	"ldlp/internal/faults"
	"ldlp/internal/flowtable"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

// equivScript is one seeded workload, generated up front so every run
// replays exactly the same inputs regardless of shard count.
type equivScript struct {
	conns  int
	uFlows int
	rounds int
	// tcpMsgs[r][c] holds connection c's messages for round r, sized by
	// maxMsg. The ledger-equality runs keep messages under the MTU:
	// fragments hash by IP ID, so a fragmented TCP segment reassembles
	// on one shard and reinjects to its flow's shard — it can arrive
	// *behind* a later unfragmented segment of the same connection. TCP
	// recovers (streams stay byte-identical, which the fault runs prove
	// with over-MTU messages), but the dup-ACK/retransmit accounting
	// legitimately diverges, so the bit-for-bit ledger claim is scoped
	// to workloads where a connection's segments stay in arrival order.
	tcpMsgs [][][][]byte
	// udpMsgs[r][f] is flow f's (small, unfragmented) payload for round
	// r, or nil.
	udpMsgs [][][]byte
	// bigAt[r] is a >MTU datagram's fill byte for round r (0 = none);
	// bigLen[r] its length. Distinct fill bytes identify datagrams
	// across runs without relying on arrival order.
	bigAt  []byte
	bigLen []int
	// pingAt[r] / strayAt[r] schedule an ICMP echo and a send to an
	// unbound port (the NoSocket drop path).
	pingAt  []bool
	strayAt []bool
}

func genEquivScript(seed int64, maxMsg int) *equivScript {
	rng := rand.New(rand.NewSource(seed))
	s := &equivScript{conns: 4, uFlows: 3, rounds: 30}
	s.tcpMsgs = make([][][][]byte, s.rounds)
	s.udpMsgs = make([][][]byte, s.rounds)
	s.bigAt = make([]byte, s.rounds)
	s.bigLen = make([]int, s.rounds)
	s.pingAt = make([]bool, s.rounds)
	s.strayAt = make([]bool, s.rounds)
	nextBig := byte(0x41)
	for r := 0; r < s.rounds; r++ {
		s.tcpMsgs[r] = make([][][]byte, s.conns)
		for c := 0; c < s.conns; c++ {
			for k := rng.Intn(3); k > 0; k-- {
				msg := make([]byte, 8+rng.Intn(maxMsg-8))
				rng.Read(msg)
				s.tcpMsgs[r][c] = append(s.tcpMsgs[r][c], msg)
			}
		}
		s.udpMsgs[r] = make([][]byte, s.uFlows)
		for f := 0; f < s.uFlows; f++ {
			if rng.Intn(4) > 0 {
				msg := make([]byte, 4+rng.Intn(96))
				rng.Read(msg)
				s.udpMsgs[r][f] = msg
			}
		}
		if r%6 == 3 {
			s.bigAt[r] = nextBig
			s.bigLen[r] = 1600 + rng.Intn(1400)
			nextBig++
		}
		s.pingAt[r] = r%5 == 2
		s.strayAt[r] = r%7 == 4
	}
	return s
}

// tcpWant returns the full stream connection c sends over the run.
func (s *equivScript) tcpWant(c int) []byte {
	var b bytes.Buffer
	for r := 0; r < s.rounds; r++ {
		for _, m := range s.tcpMsgs[r][c] {
			b.Write(m)
		}
	}
	return b.Bytes()
}

// equivRun captures everything observable about one execution.
type equivRun struct {
	serverStreams [][]byte // per dial-order connection: bytes the server read
	clientStreams [][]byte // per connection: the echo that came back
	udpSeqs       []string // per small flow: in-order delivered payloads
	bigSet        []string // sorted multiset of fragmented-datagram identities
	pings         int
	ledger        map[string]int64
	shardTCPSegs  int64 // Σ per-shard transport counters: must merge to
	shardUDPDgms  int64 // the same totals at any shard count
	reinjects     int64
	reasmLocal    int64
	reassembled   int64
	tcpReinjects  int64
}

// ledgerFields is the drop-reason/traffic ledger compared across shard
// counts. See the file comment for why PCBCache* and TxBatches are out.
func ledgerFor(name string, c *Counters) map[string]int64 {
	return map[string]int64{
		name + ".framesIn":      c.FramesIn,
		name + ".framesOut":     c.FramesOut,
		name + ".badEther":      c.BadEther,
		name + ".badIP":         c.BadIP,
		name + ".badTCP":        c.BadTCP,
		name + ".badUDP":        c.BadUDP,
		name + ".badICMP":       c.BadICMP,
		name + ".noSocket":      c.NoSocket,
		name + ".tcpFast":       c.TCPFastPath,
		name + ".tcpSlow":       c.TCPSlowPath,
		name + ".acksSent":      c.AcksSent,
		name + ".delayedAcks":   c.DelayedAcks,
		name + ".retransmits":   c.Retransmits,
		name + ".dataSegsIn":    c.DataSegsIn,
		name + ".echoReq":       c.EchoRequests,
		name + ".echoRep":       c.EchoReplies,
		name + ".fragments":     c.Fragments,
		name + ".fragmentsSent": c.FragmentsSent,
		name + ".reassembled":   c.Reassembled,
		name + ".reasmTimeouts": c.ReassemblyTimeouts,
		name + ".windowProbes":  c.WindowProbes,
		name + ".timeoutDrops":  c.TimeoutDrops,
	}
}

// runEquivWorkload replays script against a server at the given shard
// count. cfg impairs both directions when non-nil (fault runs compare
// stream contents only — injector draws depend on frame order, which
// legitimately differs across shard counts). mutate, when non-nil,
// adjusts the server's Options before the host is built (the eviction-
// policy runs use it to sweep FlowCachePolicy).
func runEquivWorkload(t *testing.T, script *equivScript, shards int, cfg *faults.Config, mutate func(*Options)) *equivRun {
	t.Helper()
	mbuf.ResetPool()
	n := NewNet()
	t.Cleanup(n.Close)
	mkOpts := func(sh int) Options {
		var o Options
		if sh > 1 {
			o = ShardedOptions(sh)
		} else {
			o = DefaultOptions(core.LDLP)
		}
		o.MTU = 600 // big TCP segments and big datagrams must fragment
		if mutate != nil {
			mutate(&o)
		}
		return o
	}
	a := n.AddHost("client", ipA, mkOpts(1))
	b := n.AddHost("server", ipB, mkOpts(shards))
	if cfg != nil {
		n.ImpairAll(*cfg, 0xD1FF)
	}

	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	clis := make([]*TCPSock, script.conns)
	for c := range clis {
		clis[c] = a.DialTCP(ipB, 80)
	}
	srvs := make([]*TCPSock, 0, script.conns)
	established := func() bool {
		for _, cli := range clis {
			if !cli.Established() {
				return false
			}
		}
		return len(srvs) == script.conns
	}
	for i := 0; i < 800 && !established(); i++ {
		n.Tick(0.05)
		for s := l.Accept(); s != nil; s = l.Accept() {
			srvs = append(srvs, s)
		}
	}
	if !established() {
		t.Fatalf("handshakes incomplete: %d/%d accepted", len(srvs), script.conns)
	}

	// Identify each accepted socket by a one-byte id the client sends
	// first: dial order is the only stable connection key across runs
	// (ephemeral ports and ISS come from process-global counters, so
	// their values differ run to run).
	for c, cli := range clis {
		if err := cli.Send([]byte{byte(c)}); err != nil {
			t.Fatal(err)
		}
	}
	srvByConn := make([]*TCPSock, script.conns)
	for i := 0; i < 800; i++ {
		n.Tick(0.05)
		done := 0
		for _, s := range srvs {
			if s.Buffered() > 0 {
				var id [1]byte
				s.Recv(id[:])
				srvByConn[int(id[0])] = s
			}
		}
		for _, s := range srvByConn {
			if s != nil {
				done++
			}
		}
		if done == script.conns {
			break
		}
	}
	for c, s := range srvByConn {
		if s == nil {
			t.Fatalf("connection %d never identified itself", c)
		}
	}

	utx := make([]*UDPSock, script.uFlows)
	urx := make([]*UDPSock, script.uFlows)
	for f := 0; f < script.uFlows; f++ {
		utx[f], _ = a.UDPSocket(uint16(1000 + f))
		urx[f], _ = b.UDPSocket(uint16(2000 + f))
	}
	bigTx, _ := a.UDPSocket(3000)
	bigRx, _ := b.UDPSocket(3100)

	run := &equivRun{
		serverStreams: make([][]byte, script.conns),
		clientStreams: make([][]byte, script.conns),
		udpSeqs:       make([]string, script.uFlows),
	}
	rbuf := make([]byte, 16384)
	drain := func() {
		for c := range srvByConn {
			for {
				nr := srvByConn[c].Recv(rbuf)
				if nr == 0 {
					break
				}
				run.serverStreams[c] = append(run.serverStreams[c], rbuf[:nr]...)
				// Echo straight back — in sub-MTU chunks, so the return
				// direction obeys the same no-TCP-fragmentation scoping
				// as the forward one (see equivScript.tcpMsgs).
				for off := 0; off < nr; off += 512 {
					end := min(off+512, nr)
					if err := srvByConn[c].Send(rbuf[off:end]); err != nil {
						t.Fatalf("echo send: %v", err)
					}
				}
			}
			for {
				nr := clis[c].Recv(rbuf)
				if nr == 0 {
					break
				}
				run.clientStreams[c] = append(run.clientStreams[c], rbuf[:nr]...)
			}
		}
		for f := range urx {
			for {
				d, ok := urx[f].Recv()
				if !ok {
					break
				}
				run.udpSeqs[f] += fmt.Sprintf("%x;", d.Data)
			}
		}
		for {
			d, ok := bigRx.Recv()
			if !ok {
				break
			}
			run.bigSet = append(run.bigSet, fmt.Sprintf("%02x-%d", d.Data[0], len(d.Data)))
		}
	}

	for r := 0; r < script.rounds; r++ {
		for c, cli := range clis {
			for _, msg := range script.tcpMsgs[r][c] {
				if err := cli.Send(msg); err != nil {
					t.Fatalf("round %d conn %d: %v", r, c, err)
				}
			}
		}
		for f := 0; f < script.uFlows; f++ {
			if m := script.udpMsgs[r][f]; m != nil {
				utx[f].SendTo(ipB, uint16(2000+f), m)
			}
		}
		if script.bigAt[r] != 0 {
			bigTx.SendTo(ipB, 3100, bytes.Repeat([]byte{script.bigAt[r]}, script.bigLen[r]))
		}
		if script.pingAt[r] {
			a.Ping(ipB, 7, uint16(r), []byte("equiv"))
		}
		if script.strayAt[r] {
			utx[0].SendTo(ipB, 9999, []byte("nobody"))
		}
		n.Tick(0.05)
		drain()
	}

	// Settle until both directions of every connection are complete (or
	// the budget proves something wedged). Fault runs need the larger
	// budget: retransmission has real work to do.
	complete := func() bool {
		for c := range clis {
			want := len(script.tcpWant(c))
			if len(run.serverStreams[c]) < want || len(run.clientStreams[c]) < want {
				return false
			}
		}
		return true
	}
	settleTicks, settleDt := 200, 0.05
	if cfg != nil {
		settleTicks, settleDt = 600, 0.25
	}
	for i := 0; i < settleTicks && !complete(); i++ {
		for c := range clis {
			if clis[c].Err() != nil || srvByConn[c].Err() != nil {
				t.Fatalf("connection %d died: cli=%v srv=%v", c, clis[c].Err(), srvByConn[c].Err())
			}
		}
		n.Tick(settleDt)
		drain()
	}
	if !complete() {
		t.Fatalf("streams incomplete after settle")
	}
	// Let stale reassembly state expire and delayed frames land, so the
	// ledger includes the same timeout accounting at every shard count.
	n.Tick(fragTimeout + 1)
	n.Tick(0.5)
	drain()

	run.pings = len(a.PingReplies())
	sort.Strings(run.bigSet)
	run.ledger = ledgerFor("a", &a.Counters)
	for k, v := range ledgerFor("b", &b.Counters) {
		run.ledger[k] = v
	}
	for _, st := range b.ShardTransportStats() {
		run.shardTCPSegs += st.TCPSegs
		run.shardUDPDgms += st.UDPDgrams
		run.reinjects += st.Reinjects
		run.reasmLocal += st.ReasmLocal
	}
	run.reassembled = b.Counters.Reassembled
	run.tcpReinjects = b.Counters.TCPReinjects
	if s := mbuf.PoolStats(); s.InUse != 0 && n.HeldFrames() == 0 {
		t.Errorf("mbuf leak at %d shards: %+v", shards, s)
	}
	return run
}

// compareStreams asserts byte-identical per-connection delivery in both
// directions, and that both match the script (absolute correctness, not
// just mutual agreement on a wrong answer).
func compareStreams(t *testing.T, script *equivScript, base, got *equivRun, shards int) {
	t.Helper()
	for c := 0; c < script.conns; c++ {
		want := script.tcpWant(c)
		if !bytes.Equal(got.serverStreams[c], want) {
			t.Errorf("shards=%d conn %d: server stream diverges from script (%d vs %d bytes)",
				shards, c, len(got.serverStreams[c]), len(want))
		}
		if !bytes.Equal(got.clientStreams[c], want) {
			t.Errorf("shards=%d conn %d: echoed stream diverges from script", shards, c)
		}
		if !bytes.Equal(got.serverStreams[c], base.serverStreams[c]) {
			t.Errorf("shards=%d conn %d: server stream differs from single-shard run", shards, c)
		}
		if !bytes.Equal(got.clientStreams[c], base.clientStreams[c]) {
			t.Errorf("shards=%d conn %d: client stream differs from single-shard run", shards, c)
		}
	}
}

// TestDifferentialShardEquivalence is the no-fault differential run:
// streams, per-flow datagram sequences, the ping count, the full drop
// ledger, and the merged per-shard transport counters must all be equal
// between RxShards=1 and RxShards∈{2,4}.
func TestDifferentialShardEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			script := genEquivScript(seed, 512)
			base := runEquivWorkload(t, script, 1, nil, nil)
			if base.reinjects != 0 {
				t.Errorf("single-threaded run reinjected %d datagrams, want 0", base.reinjects)
			}
			for _, shards := range []int{2, 4} {
				got := runEquivWorkload(t, script, shards, nil, nil)
				compareStreams(t, script, base, got, shards)
				for f := range got.udpSeqs {
					if got.udpSeqs[f] != base.udpSeqs[f] {
						t.Errorf("shards=%d: UDP flow %d sequence differs", shards, f)
					}
				}
				if fmt.Sprint(got.bigSet) != fmt.Sprint(base.bigSet) {
					t.Errorf("shards=%d: fragmented datagrams %v, want %v", shards, got.bigSet, base.bigSet)
				}
				if got.pings != base.pings {
					t.Errorf("shards=%d: %d ping replies, want %d", shards, got.pings, base.pings)
				}
				for k, v := range base.ledger {
					if got.ledger[k] != v {
						t.Errorf("shards=%d: ledger[%s] = %d, want %d", shards, k, got.ledger[k], v)
					}
				}
				// Per-shard counters must merge to the same totals: the
				// decomposition across shards is free to differ, the sum
				// is not.
				if got.shardTCPSegs != base.shardTCPSegs {
					t.Errorf("shards=%d: ΣTCPSegs = %d, want %d", shards, got.shardTCPSegs, base.shardTCPSegs)
				}
				if got.shardUDPDgms != base.shardUDPDgms {
					t.Errorf("shards=%d: ΣUDPDgrams = %d, want %d", shards, got.shardUDPDgms, base.shardUDPDgms)
				}
				// Every reassembled datagram on a sharded host either
				// continues inline (its flow's owner is the reassembling
				// shard) or crosses shards through exactly one reinject.
				if got.reinjects+got.reasmLocal != got.reassembled {
					t.Errorf("shards=%d: %d reinjects + %d local for %d reassembled datagrams",
						shards, got.reinjects, got.reasmLocal, got.reassembled)
				}
				// The checked invariant that replaced PR 6's documented
				// caveat: ledger-compared runs keep TCP segments under the
				// MTU, so no TCP datagram may take the order-breaking
				// cross-shard reinject path.
				if got.tcpReinjects != 0 {
					t.Errorf("shards=%d: %d TCP reinjects in a sub-MTU ledger run, want 0", shards, got.tcpReinjects)
				}
			}
		})
	}
}

// TestDifferentialEquivalenceUnderFaults replays the workload under
// impairment presets. Injector verdicts depend on frame order — which
// legitimately differs across shard counts — so the claim narrows to
// the one that matters: recovery converges to byte-identical streams at
// every shard count.
func TestDifferentialEquivalenceUnderFaults(t *testing.T) {
	presets := faults.Presets()
	names := []string{"bernoulli", "reorder", "corrupt", "duplication"}
	if testing.Short() {
		names = []string{"bernoulli", "corrupt"}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			cfg := presets[name]
			// Over-MTU messages: fragmented TCP segments cross shards through
			// the reassembly reinject, the one path the ledger runs scope out.
			script := genEquivScript(7, 1000)
			base := runEquivWorkload(t, script, 1, &cfg, nil)
			for _, shards := range []int{4} {
				got := runEquivWorkload(t, script, shards, &cfg, nil)
				compareStreams(t, script, base, got, shards)
			}
		})
	}
}

// TestDifferentialEquivalenceEvictionPolicies pins the flow cache's
// "policy never changes lookup results" contract end to end: the same
// workload through every eviction policy, at one shard and several,
// must produce the identical streams, datagram sequences and ledger as
// the single-shard LRU baseline. The policy only decides which entries
// stay warm — a divergence here means a cache hit returned a different
// PCB than the table would have.
func TestDifferentialEquivalenceEvictionPolicies(t *testing.T) {
	script := genEquivScript(11, 512)
	base := runEquivWorkload(t, script, 1, nil, nil)
	for _, policy := range flowtable.Policies() {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			mutate := func(o *Options) {
				o.FlowCachePolicy = policy
				o.FlowCacheSize = 4 // small enough that eviction actually happens
			}
			for _, shards := range []int{1, 2, 4} {
				got := runEquivWorkload(t, script, shards, nil, mutate)
				compareStreams(t, script, base, got, shards)
				for f := range got.udpSeqs {
					if got.udpSeqs[f] != base.udpSeqs[f] {
						t.Errorf("policy=%v shards=%d: UDP flow %d sequence differs", policy, shards, f)
					}
				}
				for k, v := range base.ledger {
					if got.ledger[k] != v {
						t.Errorf("policy=%v shards=%d: ledger[%s] = %d, want %d", policy, shards, k, got.ledger[k], v)
					}
				}
			}
		})
	}
}

// TestTupleShardMatchesRxFlowHash is the pin holding the whole ownership
// model together: the shard DialTCP plants a PCB on (tupleShard) must be
// the shard the engine routes the connection's inbound segments to
// (policy.Key over the wire frame, then policy.Shard). Checked over
// random tuples by building the actual wire frame an inbound segment
// would carry, under both a static and a load-aware policy — the
// load-aware indirection table must give the control plane and the data
// plane the same answer too.
func TestTupleShardMatchesRxFlowHash(t *testing.T) {
	policies := map[string]func() dispatch.Policy{
		"static":    func() dispatch.Policy { return dispatch.Static{} },
		"loadaware": func() dispatch.Policy { return dispatch.NewLoadAware(4, 64) },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			mbuf.ResetPool()
			n := NewNet()
			t.Cleanup(n.Close)
			pol := mk()
			o := ShardedOptions(4)
			o.Dispatch = pol
			b := n.AddHost("b", ipB, o)
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 200; i++ {
				tup := fourTuple{
					raddr: layers.IPAddr{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
					rport: uint16(rng.Intn(65536)),
					lport: uint16(rng.Intn(65536)),
				}
				// The frame an inbound segment of this connection carries: peer
				// is the IP source, we are the destination; ports in wire order.
				ip := layers.IPv4{
					TotalLen: layers.IPv4MinLen + layers.TCPMinLen,
					TTL:      64, Protocol: layers.ProtoTCP,
					Src: tup.raddr, Dst: b.IP(),
				}
				frame := make([]byte, layers.EthernetLen+layers.IPv4MinLen+layers.TCPMinLen)
				eth := layers.Ethernet{Dst: MACFor(b.IP()), Src: MACFor(tup.raddr), EtherType: layers.EtherTypeIPv4}
				eth.Encode(frame[:layers.EthernetLen])
				ip.Encode(frame[layers.EthernetLen : layers.EthernetLen+layers.IPv4MinLen])
				tcpHdr := frame[layers.EthernetLen+layers.IPv4MinLen:]
				tcpHdr[0], tcpHdr[1] = byte(tup.rport>>8), byte(tup.rport)
				tcpHdr[2], tcpHdr[3] = byte(tup.lport>>8), byte(tup.lport)

				owner := b.tupleShard(tup)
				routed := pol.Shard(dispatch.FrameKey(frame), b.RxShards())
				if owner.idx != routed {
					t.Fatalf("tuple %v: DialTCP would own shard %d but segments route to shard %d", tup, owner.idx, routed)
				}
			}
		})
	}
}

// TestDifferentialEquivalenceDispatchPolicies runs the workload under
// every dispatch policy at every shard count: each must produce the
// same streams, datagram sequences and ledger as the static single-
// shard baseline. The rpc-xid policy only rekeys RPC calls to its port
// (none exist in this workload, so it must behave exactly like static
// — any divergence means it rekeyed something it shouldn't). The
// load-aware policy migrates flows mid-run at rebalance points; the
// equality proves migrations are behaviour-free. A fault-preset leg
// narrows to stream equality, like the other fault runs.
func TestDifferentialEquivalenceDispatchPolicies(t *testing.T) {
	script := genEquivScript(13, 512)
	base := runEquivWorkload(t, script, 1, nil, nil)
	policies := []struct {
		name string
		mk   func(shards int) dispatch.Policy
	}{
		{"static", func(int) dispatch.Policy { return dispatch.Static{} }},
		// Small buckets + a fresh instance per run: rebalancing must
		// actually fire and still change nothing observable.
		{"loadaware", func(sh int) dispatch.Policy { return dispatch.NewLoadAware(sh, 64) }},
		{"rpcxid", func(int) dispatch.Policy { return dispatch.NewRPCDispatch(2000) }},
	}
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		shardCounts = []int{1, 4}
	}
	for _, pc := range policies {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			for _, shards := range shardCounts {
				mutate := func(o *Options) { o.Dispatch = pc.mk(o.RxShards) }
				got := runEquivWorkload(t, script, shards, nil, mutate)
				compareStreams(t, script, base, got, shards)
				for f := range got.udpSeqs {
					if got.udpSeqs[f] != base.udpSeqs[f] {
						t.Errorf("policy=%s shards=%d: UDP flow %d sequence differs", pc.name, shards, f)
					}
				}
				if fmt.Sprint(got.bigSet) != fmt.Sprint(base.bigSet) {
					t.Errorf("policy=%s shards=%d: fragmented datagrams %v, want %v", pc.name, shards, got.bigSet, base.bigSet)
				}
				for k, v := range base.ledger {
					if got.ledger[k] != v {
						t.Errorf("policy=%s shards=%d: ledger[%s] = %d, want %d", pc.name, shards, k, got.ledger[k], v)
					}
				}
				if got.shardTCPSegs != base.shardTCPSegs {
					t.Errorf("policy=%s shards=%d: ΣTCPSegs = %d, want %d", pc.name, shards, got.shardTCPSegs, base.shardTCPSegs)
				}
				if got.reinjects+got.reasmLocal != got.reassembled {
					t.Errorf("policy=%s shards=%d: %d reinjects + %d local for %d reassembled",
						pc.name, shards, got.reinjects, got.reasmLocal, got.reassembled)
				}
				if got.tcpReinjects != 0 {
					t.Errorf("policy=%s shards=%d: %d TCP reinjects in a sub-MTU run, want 0", pc.name, shards, got.tcpReinjects)
				}
			}
		})
	}
	if !testing.Short() {
		cfg := faults.Presets()["bernoulli"]
		fscript := genEquivScript(17, 1000)
		fbase := runEquivWorkload(t, fscript, 1, &cfg, nil)
		for _, pc := range policies {
			pc := pc
			t.Run(pc.name+"/faults", func(t *testing.T) {
				mutate := func(o *Options) { o.Dispatch = pc.mk(o.RxShards) }
				got := runEquivWorkload(t, fscript, 4, &cfg, mutate)
				compareStreams(t, fscript, fbase, got, 4)
			})
		}
	}
}

// TestMalformedFrameLedgerShardInvariant pins the malformed-frame
// canonicalization bugfix: frames the decoder rejects before reading a
// transport header — truncated runts, bad IHL, wrong IP version, and
// copies of those differing only in link padding — must produce an
// identical drop ledger at every shard count. Before the fix such
// frames hashed over their raw bytes, so two copies of one malformed
// frame could land on different shards; with the canonical key they
// dispatch identically everywhere.
func TestMalformedFrameLedgerShardInvariant(t *testing.T) {
	buildFrames := func() [][]byte {
		eth := layers.Ethernet{Dst: MACFor(ipB), Src: MACFor(ipA), EtherType: layers.EtherTypeIPv4}
		hdr := make([]byte, layers.EthernetLen)
		eth.Encode(hdr)
		var frames [][]byte
		// Truncated runts: same frame, three different paddings.
		for _, pad := range [][]byte{nil, {0x00, 0x00}, {0xde, 0xad, 0xbe, 0xef}} {
			f := append(append([]byte{}, hdr...), 0x45, 0x00, 0x00)
			frames = append(frames, append(f, pad...))
		}
		// Bad IHL (4 < 5): full-length header, garbage option bytes vary.
		for _, fill := range []byte{0x00, 0xff} {
			f := append([]byte{}, hdr...)
			ipb := make([]byte, layers.IPv4MinLen+8)
			ipb[0] = 0x44 // version 4, IHL 4
			for i := layers.IPv4MinLen; i < len(ipb); i++ {
				ipb[i] = fill
			}
			frames = append(frames, append(f, ipb...))
		}
		// Wrong IP version.
		f := append([]byte{}, hdr...)
		ipb := make([]byte, layers.IPv4MinLen)
		ipb[0] = 0x65 // version 6
		frames = append(frames, append(f, ipb...))
		return frames
	}
	run := func(shards int) map[string]int64 {
		mbuf.ResetPool()
		n := NewNet()
		defer n.Close()
		var o Options
		if shards > 1 {
			o = ShardedOptions(shards)
		} else {
			o = DefaultOptions(core.LDLP)
		}
		b := n.AddHost("server", ipB, o)
		for rep := 0; rep < 3; rep++ {
			for _, f := range buildFrames() {
				b.deliver(mbuf.FromBytes(f))
			}
		}
		n.RunUntilIdle()
		return ledgerFor("b", &b.Counters)
	}
	base := run(1)
	if base["b.badIP"] == 0 && base["b.badEther"] == 0 {
		t.Fatal("malformed workload produced no drops — test is vacuous")
	}
	for _, shards := range []int{2, 4} {
		got := run(shards)
		for k, v := range base {
			if got[k] != v {
				t.Errorf("shards=%d: ledger[%s] = %d, want %d", shards, k, got[k], v)
			}
		}
	}
}
