package netstack

import (
	"bytes"
	"fmt"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/dispatch"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

// shardedPair builds a client (single-threaded) and a server whose
// receive path runs on shards worker cores.
func shardedPair(t *testing.T, shards int) (*Net, *Host, *Host) {
	t.Helper()
	mbuf.ResetPool()
	n := NewNet()
	a := n.AddHost("client", ipA, DefaultOptions(core.LDLP))
	b := n.AddHost("server", ipB, ShardedOptions(shards))
	t.Cleanup(n.Close)
	return n, a, b
}

func TestShardedHostRequiresLDLP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RxShards with Conventional discipline did not panic")
		}
	}()
	o := DefaultOptions(core.Conventional)
	o.RxShards = 4
	NewNet().AddHost("x", ipA, o)
}

func TestShardedUDPPerFlowOrder(t *testing.T) {
	const flows, perFlow = 6, 40
	n, a, b := shardedPair(t, 4)
	var clients []*UDPSock
	var servers []*UDPSock
	for f := 0; f < flows; f++ {
		c, err := a.UDPSocket(uint16(1000 + f))
		if err != nil {
			t.Fatal(err)
		}
		s, err := b.UDPSocket(uint16(2000 + f))
		if err != nil {
			t.Fatal(err)
		}
		clients, servers = append(clients, c), append(servers, s)
	}
	for seq := 0; seq < perFlow; seq++ {
		for f := 0; f < flows; f++ {
			clients[f].SendTo(ipB, uint16(2000+f), []byte(fmt.Sprintf("f%d-%04d", f, seq)))
		}
	}
	n.RunUntilIdle()

	for f := 0; f < flows; f++ {
		for seq := 0; seq < perFlow; seq++ {
			dg, ok := servers[f].Recv()
			if !ok {
				t.Fatalf("flow %d: missing datagram %d", f, seq)
			}
			want := fmt.Sprintf("f%d-%04d", f, seq)
			if string(dg.Data) != want {
				t.Fatalf("flow %d reordered: got %q, want %q", f, dg.Data, want)
			}
		}
	}
	if got := b.Counters.FramesIn; got != flows*perFlow {
		t.Errorf("FramesIn = %d, want %d", got, flows*perFlow)
	}
	if b.RxShards() != 4 {
		t.Errorf("RxShards() = %d, want 4", b.RxShards())
	}
	if st := b.StackStats(); st.Delivered != flows*perFlow {
		t.Errorf("aggregate Delivered = %d, want %d", st.Delivered, flows*perFlow)
	}
	checkNoLeaks(t)
}

func TestShardedTCPConnectionsStayOrdered(t *testing.T) {
	const conns = 5
	n, a, b := shardedPair(t, 4)
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	var socks []*TCPSock
	for i := 0; i < conns; i++ {
		socks = append(socks, a.DialTCP(ipB, 80))
	}
	n.RunUntilIdle()

	var accepted []*TCPSock
	for {
		s := l.Accept()
		if s == nil {
			break
		}
		accepted = append(accepted, s)
	}
	if len(accepted) != conns {
		t.Fatalf("accepted %d connections, want %d", len(accepted), conns)
	}

	// Each connection streams a distinct pattern; TCP must deliver every
	// byte in order even though segments of different connections race
	// across shards.
	want := make([][]byte, conns)
	for i, s := range socks {
		for k := 0; k < 30; k++ {
			chunk := bytes.Repeat([]byte{byte('A' + i)}, 100+k)
			want[i] = append(want[i], chunk...)
			if err := s.Send(chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	n.RunUntilIdle()

	for i := range accepted {
		// Accept order is unspecified with concurrent handshakes; match by
		// first byte.
		var got []byte
		buf := make([]byte, 65536)
		for {
			m := accepted[i].Recv(buf)
			if m == 0 {
				break
			}
			got = append(got, buf[:m]...)
		}
		if len(got) == 0 {
			t.Fatalf("connection %d received nothing", i)
		}
		idx := int(got[0] - 'A')
		if idx < 0 || idx >= conns {
			t.Fatalf("connection %d: unexpected first byte %q", i, got[0])
		}
		if !bytes.Equal(got, want[idx]) {
			t.Fatalf("stream %d corrupted: got %d bytes, want %d", idx, len(got), len(want[idx]))
		}
	}
	if b.Counters.DataSegsIn == 0 || b.Counters.TCPFastPath == 0 {
		t.Errorf("server counters look wrong: %+v", b.Counters)
	}
	checkNoLeaks(t)
}

func TestShardedFragmentReassembly(t *testing.T) {
	// All fragments of a datagram share an IP ID, so rxFlowHash pins them
	// to one shard and reassembly needs no cross-shard coordination.
	mbuf.ResetPool()
	n := NewNet()
	small := DefaultOptions(core.LDLP)
	small.MTU = 600
	a := n.AddHost("client", ipA, small)
	srv := ShardedOptions(4)
	srv.MTU = 600
	b := n.AddHost("server", ipB, srv)
	t.Cleanup(n.Close)

	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)
	for i := 0; i < 8; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 3000)
		sa.SendTo(ipB, 2, payload)
	}
	n.RunUntilIdle()
	// Datagrams carry distinct IP IDs, so they may reassemble on
	// different shards and reach the socket in any order; each one must
	// still come out whole and uncorrupted.
	seen := make(map[byte]bool)
	for i := 0; i < 8; i++ {
		dg, ok := sb.Recv()
		if !ok {
			t.Fatalf("only %d of 8 datagrams arrived", i)
		}
		if len(dg.Data) != 3000 {
			t.Fatalf("datagram %d has len %d, want 3000", i, len(dg.Data))
		}
		fill := dg.Data[0]
		for _, c := range dg.Data {
			if c != fill {
				t.Fatalf("datagram payload mixed fragments: %d vs %d", c, fill)
			}
		}
		if seen[fill] {
			t.Fatalf("datagram %d duplicated", fill)
		}
		seen[fill] = true
	}
	if b.Counters.Reassembled != 8 {
		t.Errorf("Reassembled = %d, want 8", b.Counters.Reassembled)
	}
	if b.Counters.Fragments == 0 {
		t.Error("no fragments counted on a sub-MTU path")
	}
	checkNoLeaks(t)
}

func TestShardedPingEcho(t *testing.T) {
	n, a, b := shardedPair(t, 2)
	_ = b
	for i := 0; i < 10; i++ {
		a.Ping(ipB, 7, uint16(i), []byte("payload"))
	}
	n.RunUntilIdle()
	replies := a.PingReplies()
	if len(replies) != 10 {
		t.Fatalf("got %d replies, want 10", len(replies))
	}
	if b.Counters.EchoRequests != 10 {
		t.Errorf("server EchoRequests = %d", b.Counters.EchoRequests)
	}
	checkNoLeaks(t)
}

func TestShardedMatchesSingleThreadedDelivery(t *testing.T) {
	// The sharded receive path must be observationally equivalent to the
	// single-threaded one: same datagrams, same per-flow order, same
	// socket-visible results.
	run := func(shards int) [][]string {
		mbuf.ResetPool()
		n := NewNet()
		a := n.AddHost("client", ipA, DefaultOptions(core.LDLP))
		opts := DefaultOptions(core.LDLP)
		opts.RxShards = shards
		b := n.AddHost("server", ipB, opts)
		defer n.Close()
		const flows, perFlow = 4, 25
		var cs, ss []*UDPSock
		for f := 0; f < flows; f++ {
			c, _ := a.UDPSocket(uint16(100 + f))
			s, _ := b.UDPSocket(uint16(200 + f))
			cs, ss = append(cs, c), append(ss, s)
		}
		for seq := 0; seq < perFlow; seq++ {
			for f := 0; f < flows; f++ {
				cs[f].SendTo(ipB, uint16(200+f), []byte(fmt.Sprintf("%d:%d", f, seq)))
			}
		}
		n.RunUntilIdle()
		out := make([][]string, flows)
		for f := 0; f < flows; f++ {
			for {
				dg, ok := ss[f].Recv()
				if !ok {
					break
				}
				out[f] = append(out[f], string(dg.Data))
			}
		}
		return out
	}
	single := run(1)
	sharded := run(4)
	if fmt.Sprint(single) != fmt.Sprint(sharded) {
		t.Errorf("sharded deliveries diverge:\nsingle:  %v\nsharded: %v", single, sharded)
	}
}

func TestFrameKeyFlows(t *testing.T) {
	mkFrame := func(src, dst layers.IPAddr, proto byte, srcPort, dstPort uint16, id uint16, flags byte, fragOff int) []byte {
		payload := []byte{byte(srcPort >> 8), byte(srcPort), byte(dstPort >> 8), byte(dstPort), 0, 0, 0, 0}
		ip := layers.IPv4{
			TotalLen: layers.IPv4MinLen + len(payload),
			ID:       id, TTL: 64, Protocol: proto, Src: src, Dst: dst,
			Flags: flags, FragOff: fragOff,
		}
		m := mbuf.FromBytes(payload)
		m, hdr := m.Prepend(layers.IPv4MinLen)
		ip.Encode(hdr)
		eth := layers.Ethernet{Dst: MACFor(dst), Src: MACFor(src), EtherType: layers.EtherTypeIPv4}
		m, hdr = m.Prepend(layers.EthernetLen)
		eth.Encode(hdr)
		out := append([]byte(nil), m.Contiguous()...)
		m.FreeChain()
		return out
	}

	// Same 4-tuple -> same shard, regardless of payload-free header noise.
	h1 := dispatch.FrameKey(mkFrame(ipA, ipB, layers.ProtoTCP, 1111, 80, 5, 0, 0))
	h2 := dispatch.FrameKey(mkFrame(ipA, ipB, layers.ProtoTCP, 1111, 80, 99, 0, 0))
	if h1 != h2 {
		t.Error("same 4-tuple hashed to different flows")
	}
	// Different source port -> (almost surely) a different flow.
	h3 := dispatch.FrameKey(mkFrame(ipA, ipB, layers.ProtoTCP, 2222, 80, 5, 0, 0))
	if h1 == h3 {
		t.Error("distinct 4-tuples collided (suspicious for FNV on 4 bytes)")
	}
	// Fragments of one datagram share a hash with each other...
	f1 := dispatch.FrameKey(mkFrame(ipA, ipB, layers.ProtoUDP, 1111, 80, 42, 0x1, 0))
	f2 := dispatch.FrameKey(mkFrame(ipA, ipB, layers.ProtoUDP, 7777, 9999, 42, 0, 1480))
	if f1 != f2 {
		t.Error("fragments of the same datagram hashed apart")
	}
	// ...but not with fragments of a different datagram.
	f3 := dispatch.FrameKey(mkFrame(ipA, ipB, layers.ProtoUDP, 1111, 80, 43, 0x1, 0))
	if f1 == f3 {
		t.Error("fragments of different datagrams collided")
	}
	// Runt frames must not panic.
	_ = dispatch.FrameKey(nil)
	_ = dispatch.FrameKey([]byte{1, 2, 3})
}

// TestShardedStressManyFlows is the netstack leg of the race suite: a
// storm of interleaved UDP flows, TCP transfers and pings into one
// sharded host. Run under `make test-race`.
func TestShardedStressManyFlows(t *testing.T) {
	const flows = 16
	n, a, b := shardedPair(t, 4)
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	conn := a.DialTCP(ipB, 80)
	var cs, ss []*UDPSock
	for f := 0; f < flows; f++ {
		c, _ := a.UDPSocket(uint16(5000 + f))
		s, _ := b.UDPSocket(uint16(6000 + f))
		cs, ss = append(cs, c), append(ss, s)
	}
	total := 0
	for round := 0; round < 20; round++ {
		for f := 0; f < flows; f++ {
			cs[f].SendTo(ipB, uint16(6000+f), bytes.Repeat([]byte{byte(f)}, 64))
			total++
		}
		conn.Send(bytes.Repeat([]byte{'x'}, 512))
		a.Ping(ipB, 1, uint16(round), nil)
		n.RunUntilIdle()
	}
	if l.Accept() == nil {
		t.Fatal("TCP connection never accepted")
	}
	got := 0
	for f := 0; f < flows; f++ {
		for {
			if _, ok := ss[f].Recv(); !ok {
				break
			}
			got++
		}
	}
	if got != total {
		t.Errorf("UDP datagrams delivered %d, want %d", got, total)
	}
	if len(a.PingReplies()) != 20 {
		t.Error("missing ping replies")
	}
}
