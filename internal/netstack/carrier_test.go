package netstack

import (
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

// TestCarrierWiresTwoNets drives two hosts on separate Nets through an
// external carrier — the multi-host wiring the fleet simulator builds
// on. Every transmitted frame must leave through the carrier (never the
// internal wire), and InjectFrame + Pump must complete the UDP round
// trip under both disciplines.
func TestCarrierWiresTwoNets(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		t.Run(d.String(), func(t *testing.T) {
			ipA := layers.IPAddr{10, 0, 0, 1}
			ipB := layers.IPAddr{10, 0, 0, 2}
			netA, netB := NewNet(), NewNet()
			a := netA.AddHost("a", ipA, DefaultOptions(d))
			b := netB.AddHost("b", ipB, DefaultOptions(d))
			defer netA.Close()
			defer netB.Close()

			// The carrier routes by MAC across the two chassis; frames to
			// anyone else are freed and counted.
			var carried, unroutable int
			carry := func(dst layers.MACAddr, m *mbuf.Mbuf) {
				carried++
				switch dst {
				case MACFor(ipA):
					a.InjectFrame(m)
				case MACFor(ipB):
					b.InjectFrame(m)
				default:
					unroutable++
					m.FreeChain()
				}
			}
			netA.SetCarrier(carry)
			netB.SetCarrier(carry)

			sockA, err := a.UDPSocket(9000)
			if err != nil {
				t.Fatal(err)
			}
			sockB, err := b.UDPSocket(9000)
			if err != nil {
				t.Fatal(err)
			}

			sockA.SendTo(ipB, 9000, []byte("ping"))
			a.Pump() // flush A's tx queue through the carrier (LDLP batches it)
			b.Pump() // run B's receive path
			dg, ok := sockB.Recv()
			if !ok || string(dg.Data) != "ping" {
				t.Fatalf("B did not receive the datagram: ok=%v data=%q", ok, dg.Data)
			}
			sockB.SendTo(dg.Src, dg.SrcPort, []byte("pong"))
			b.Pump()
			a.Pump()
			if dg, ok = sockA.Recv(); !ok || string(dg.Data) != "pong" {
				t.Fatalf("A did not receive the reply: ok=%v data=%q", ok, dg.Data)
			}

			if carried != 2 {
				t.Fatalf("carrier saw %d frames, want 2", carried)
			}
			if unroutable != 0 {
				t.Fatalf("carrier saw %d unroutable frames", unroutable)
			}
		})
	}
}

// TestAdvanceToIsMonotonic pins the carrier-scheduler clock contract:
// completion times from interleaved per-node events may arrive out of
// order, and the shared clock must never run backwards.
func TestAdvanceToIsMonotonic(t *testing.T) {
	n := NewNet()
	n.AdvanceTo(1.5)
	if n.Now() != 1.5 {
		t.Fatalf("Now = %v, want 1.5", n.Now())
	}
	n.AdvanceTo(0.7) // earlier completion from another node's event
	if n.Now() != 1.5 {
		t.Fatalf("AdvanceTo ran the clock backwards: %v", n.Now())
	}
	n.AdvanceTo(2.25)
	if n.Now() != 2.25 {
		t.Fatalf("Now = %v, want 2.25", n.Now())
	}
}
