package netstack

// End-to-end tests for the programmable dispatch layer: a deterministic
// hot-shard scenario proving the load-aware policy migrates live TCP and
// reassembly state without breaking either, and a chaos-grade steal test
// that rebalances while impaired traffic is in flight.

import (
	"bytes"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/dispatch"
	"ldlp/internal/faults"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

// udpProbe forges a minimal valid UDP frame (header only, checksum
// disabled) from src to dst — enough to pass the decoders and load the
// dispatch policy's bucket counters, even though no socket claims it.
func udpProbe(src, dst layers.IPAddr, sport, dport uint16) *mbuf.Mbuf {
	pl := make([]byte, layers.UDPLen)
	pl[0], pl[1] = byte(sport>>8), byte(sport)
	pl[2], pl[3] = byte(dport>>8), byte(dport)
	pl[5] = layers.UDPLen // length; checksum left zero (disabled)
	return chaosFrame(src, dst, layers.ProtoUDP, 1, 0, 0, pl)
}

// sportForBucket searches source ports until the flow's key lands in the
// wanted bucket (mask buckets-1), so tests can aim load at a shard.
func sportForBucket(t *testing.T, dst layers.IPAddr, dport uint16, buckets int, want uint64) uint16 {
	t.Helper()
	for sport := uint16(1024); sport != 0; sport++ {
		key := dispatch.TupleKey(ipA, dst, layers.ProtoUDP, sport, dport)
		if key&uint64(buckets-1) == want {
			return sport
		}
	}
	t.Fatal("no source port hits the wanted bucket")
	return 0
}

// TestLoadAwareMigratesHotFlows builds the skew the policy exists to
// fix — one shard holding an elephant bucket — and proves the whole
// migration path end to end: the rebalance moves the elephant bucket,
// the established TCP connection inside it is re-homed (FlowsMigrated),
// the partial reassembly sharing the bucket moves with it
// (FragsMigrated), and both keep working afterwards: the datagram
// completes on the new shard and the connection carries data both ways.
func TestLoadAwareMigratesHotFlows(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	t.Cleanup(n.Close)
	const shards, buckets = 4, 64
	pol := dispatch.NewLoadAware(shards, buckets)
	optB := ShardedOptions(shards)
	optB.Dispatch = pol
	a := n.AddHost("client", ipA, DefaultOptions(core.LDLP))
	b := n.AddHost("server", ipB, optB)

	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	cli := a.DialTCP(ipB, 80)
	var srv *TCPSock
	for i := 0; i < 100 && srv == nil; i++ {
		n.Tick(0.01)
		srv = l.Accept()
	}
	if srv == nil {
		t.Fatal("handshake never completed")
	}

	// The server-side tuple of this connection names its bucket; with a
	// fresh table (no rebalance has fired yet: handshake traffic is far
	// below the observation window) the bucket's owner is bucket % shards.
	connKey := dispatch.TupleKey(ipA, ipB, layers.ProtoTCP, cli.pcb.tuple.lport, 80)
	connBucket := connKey & (buckets - 1)

	// Open reassembly state in the same bucket: the first fragment of a
	// datagram whose fragment key collides with the connection's bucket
	// lands on the same shard and must migrate with it.
	rx, err := b.UDPSocket(5000)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	seg := make([]byte, layers.UDPLen)
	uh := layers.UDP{SrcPort: 9, DstPort: 5000}
	uh.Encode(seg, payload, ipA, ipB)
	whole := append(seg, payload...)
	var fragID uint16
	for id := uint16(1); ; id++ {
		if dispatch.FragmentKey(ipA, ipB, layers.ProtoUDP, id)&(buckets-1) == connBucket {
			fragID = id
			break
		}
	}
	b.deliver(chaosFrame(ipA, ipB, layers.ProtoUDP, fragID, 0x1, 0, whole[:576]))
	n.RunUntilIdle()
	if b.numFrags() != 1 {
		t.Fatal("first fragment did not open reassembly state")
	}

	// Build the skew: the connection's bucket is the elephant (700
	// frames), a second bucket on the same shard carries 300 more, and
	// each other shard gets 100 of background — so the greedy rebalance
	// must move the elephant bucket, and with it the flow and the
	// fragment.
	load := func(bucket uint64, frames int) {
		sport := sportForBucket(t, ipB, 9999, buckets, bucket)
		for i := 0; i < frames; i++ {
			b.deliver(udpProbe(ipA, ipB, sport, 9999))
		}
	}
	load(connBucket, 700)
	load((connBucket+4)%buckets, 300) // same shard, different bucket
	for off := uint64(1); off <= 3; off++ {
		load((connBucket+off)%buckets, 100) // background on the other shards
	}
	n.RunUntilIdle()
	n.Tick(0.01) // quiescent point: the policy rebalances here

	ds := b.DispatchStats()
	if ds.Policy != pol.Name() {
		t.Errorf("DispatchStats.Policy = %q, want %q", ds.Policy, pol.Name())
	}
	if ds.Rebalances == 0 || ds.BucketMoves == 0 {
		t.Fatalf("skewed load triggered no rebalance: %+v", ds)
	}
	if ds.FlowsMigrated == 0 {
		t.Fatalf("hot bucket moved but its TCP flow did not: %+v", ds)
	}
	if ds.FragsMigrated == 0 {
		t.Fatalf("hot bucket moved but its reassembly state did not: %+v", ds)
	}
	if fs := b.FlowStats(); fs.Migrated != ds.FlowsMigrated {
		t.Errorf("FlowStats.Migrated = %d, DispatchStats.FlowsMigrated = %d", fs.Migrated, ds.FlowsMigrated)
	}

	// The migrated reassembly completes on the new shard.
	b.deliver(chaosFrame(ipA, ipB, layers.ProtoUDP, fragID, 0, 576, whole[576:]))
	n.RunUntilIdle()
	d, ok := rx.Recv()
	if !ok {
		t.Fatal("datagram never completed after its partial state migrated")
	}
	if !bytes.Equal(d.Data, payload) {
		t.Error("reassembled payload corrupted across migration")
	}
	if got := b.Counters.Reassembled; got != 1 {
		t.Errorf("Reassembled = %d, want 1", got)
	}

	// The migrated connection still carries data both ways, in order.
	msg := []byte("post-migration payload")
	if err := cli.Send(msg); err != nil {
		t.Fatal(err)
	}
	if err := srv.Send([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	buf := make([]byte, 64)
	if nr := srv.Recv(buf); !bytes.Equal(buf[:nr], msg) {
		t.Errorf("server received %q across migration, want %q", buf[:nr], msg)
	}
	if nr := cli.Recv(buf); !bytes.Equal(buf[:nr], []byte("ack")) {
		t.Errorf("client received %q across migration, want %q", buf[:nr], "ack")
	}
	checkNoLeaks(t)
}

// TestChaosDispatchSteal rebalances while traffic is actually in
// flight and the link is lossy: a TCP transfer runs under a Bernoulli
// impairment while forged background load keeps one shard hot, so every
// few rounds the load-aware policy steals buckets mid-conversation. The
// stream must still arrive byte-identical, buckets must demonstrably
// have moved, and nothing may leak. Runs under -race via make chaos.
func TestChaosDispatchSteal(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	t.Cleanup(n.Close)
	const shards, buckets = 4, 64
	pol := dispatch.NewLoadAware(shards, buckets)
	optB := ShardedOptions(shards)
	optB.Dispatch = pol
	a := n.AddHost("client", ipA, DefaultOptions(core.LDLP))
	b := n.AddHost("server", ipB, optB)
	n.ImpairAll(faults.Presets()["bernoulli"], 0xD15)

	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	cli := a.DialTCP(ipB, 80)
	var srv *TCPSock
	for i := 0; i < 400 && srv == nil; i++ {
		n.Tick(0.05)
		srv = l.Accept()
	}
	if srv == nil {
		t.Fatalf("handshake never completed under loss (client %s)", cli.State())
	}

	// Background skew: a heavy and a medium bucket on shard 0, a trickle
	// on the others — enough churn that the policy keeps stealing.
	heavy := sportForBucket(t, ipB, 9999, buckets, 4)
	medium := sportForBucket(t, ipB, 9999, buckets, 8)
	light := []uint16{
		sportForBucket(t, ipB, 9999, buckets, 1),
		sportForBucket(t, ipB, 9999, buckets, 2),
		sportForBucket(t, ipB, 9999, buckets, 3),
	}

	var want, got bytes.Buffer
	rbuf := make([]byte, 8192)
	for r := 0; r < 40; r++ {
		chunk := make([]byte, 300)
		for i := range chunk {
			chunk[i] = byte(r*17 + i)
		}
		want.Write(chunk)
		if err := cli.Send(chunk); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for i := 0; i < 20; i++ {
			b.deliver(udpProbe(ipA, ipB, heavy, 9999))
		}
		for i := 0; i < 8; i++ {
			b.deliver(udpProbe(ipA, ipB, medium, 9999))
		}
		for _, sp := range light {
			b.deliver(udpProbe(ipA, ipB, sp, 9999))
			b.deliver(udpProbe(ipA, ipB, sp, 9999))
		}
		n.RunUntilIdle() // quiesce the forged load before firing timers
		n.Tick(0.05)     // rebalance point, mid-conversation
		for nr := srv.Recv(rbuf); nr > 0; nr = srv.Recv(rbuf) {
			got.Write(rbuf[:nr])
		}
	}
	// Settle: retransmission alone must complete the stream.
	for i := 0; i < 600 && got.Len() < want.Len(); i++ {
		if cli.Err() != nil || srv.Err() != nil {
			t.Fatalf("connection died mid-steal: cli=%v srv=%v", cli.Err(), srv.Err())
		}
		n.Tick(0.25)
		for nr := srv.Recv(rbuf); nr > 0; nr = srv.Recv(rbuf) {
			got.Write(rbuf[:nr])
		}
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		i := 0
		for i < got.Len() && i < want.Len() && got.Bytes()[i] == want.Bytes()[i] {
			i++
		}
		t.Fatalf("stream corrupted by stealing: got %d bytes, want %d, diverges at %d",
			got.Len(), want.Len(), i)
	}
	ds := b.DispatchStats()
	if ds.Rebalances == 0 || ds.BucketMoves == 0 {
		t.Fatalf("no stealing happened — the test lost its premise: %+v", ds)
	}
	checkNoLeaks(t)
}

// TestDispatchStatsSingleThreaded: the stats surface degrades gracefully
// on an unsharded host — one shard-frame entry, zero imbalance, static
// policy, no migrations.
func TestDispatchStatsSingleThreaded(t *testing.T) {
	_, a, b := twoHosts(t, core.LDLP)
	tx, _ := a.UDPSocket(1000)
	if _, err := b.UDPSocket(2000); err != nil {
		t.Fatal(err)
	}
	tx.SendTo(ipB, 2000, []byte("hi"))
	a.net.RunUntilIdle()
	ds := b.DispatchStats()
	if ds.Policy != "static" || len(ds.ShardFrames) != 1 {
		t.Errorf("unsharded DispatchStats = %+v", ds)
	}
	if ds.Rebalances != 0 || ds.FlowsMigrated != 0 {
		t.Errorf("unsharded host reports migrations: %+v", ds)
	}
}

// TestRPCDispatchSpreadsOneFlow: the paper's UDP-RPC motivation — many
// outstanding requests on a single host pair — must spread across shards
// under the XID policy where the static policy pins them to one. Both
// must deliver every request.
func TestRPCDispatchSpreadsOneFlow(t *testing.T) {
	const port, reqs = 2049, 64
	run := func(t *testing.T, polFor func() dispatch.Policy) []int64 {
		mbuf.ResetPool()
		n := NewNet()
		t.Cleanup(n.Close)
		opt := ShardedOptions(4)
		if p := polFor(); p != nil {
			opt.Dispatch = p
		}
		a := n.AddHost("client", ipA, DefaultOptions(core.LDLP))
		b := n.AddHost("server", ipB, opt)
		rx, err := b.UDPSocket(port)
		if err != nil {
			t.Fatal(err)
		}
		rx.QueueLimit = 1 << 16
		tx, err := a.UDPSocket(700)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < reqs; i++ {
			hdr := make([]byte, 20, 64)
			xid := uint32(0x1000 + i*7)
			hdr[0], hdr[1], hdr[2], hdr[3] = byte(xid>>24), byte(xid>>16), byte(xid>>8), byte(xid)
			// type = call (0), rest of the header zero.
			tx.SendTo(ipB, port, append(hdr, byte(i)))
		}
		n.RunUntilIdle()
		delivered := 0
		for {
			if _, ok := rx.Recv(); !ok {
				break
			}
			delivered++
		}
		if delivered != reqs {
			t.Fatalf("delivered %d/%d requests", delivered, reqs)
		}
		return b.DispatchStats().ShardFrames
	}
	staticFrames := run(t, func() dispatch.Policy { return nil })
	rpcFrames := run(t, func() dispatch.Policy { return dispatch.NewRPCDispatch(port) })
	busy := func(fr []int64) int {
		n := 0
		for _, f := range fr {
			if f > 0 {
				n++
			}
		}
		return n
	}
	if got := busy(staticFrames); got != 1 {
		t.Fatalf("static policy spread one flow over %d shards: %v", got, staticFrames)
	}
	if got := busy(rpcFrames); got < 3 {
		t.Errorf("rpc-xid policy used only %d shards for %d requests: %v", got, reqs, rpcFrames)
	}
}
