package netstack

import (
	"ldlp/internal/flowtable"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

// IPv4 fragmentation and reassembly. The paper's traced fast path never
// sees fragments ("the message is addressed to the host and is not a
// fragment"), but a usable substrate needs the slow path too: datagrams
// larger than the link MTU are fragmented on output and reassembled on
// input, with a timer bounding how long partial datagrams are held.

// fragKey identifies one datagram being reassembled.
type fragKey struct {
	src   layers.IPAddr
	id    uint16
	proto byte
}

// pack serializes the key (4 address bytes + 2 ID bytes + protocol = 7
// bytes) into one word for the flow-table hash.
func (k fragKey) pack() uint64 {
	return uint64(k.src[0])<<48 | uint64(k.src[1])<<40 |
		uint64(k.src[2])<<32 | uint64(k.src[3])<<24 |
		uint64(k.id)<<8 | uint64(k.proto)
}

func fragHash(k fragKey) uint64 { return flowtable.Mix64(k.pack()) }

// fragQEntry is one slot of a shard's frag insertion-order queue. The
// state pointer disambiguates key reuse: if the datagram completed (or
// timed out) and a new reassembly later claimed the same key, the
// stale queue entry must not evict the newcomer — the pointer
// comparison in evictOldestFrag skips it.
type fragQEntry struct {
	key fragKey
	st  *fragState
}

// fragState tracks received byte ranges of one datagram. data and have
// grow geometrically (capacity doubling) and are reused across all
// fragments of the datagram, so reassembly costs O(log n) allocations
// per datagram instead of one exact-size reallocation per fragment.
type fragState struct {
	data      []byte
	have      []bool
	haveBytes int // count of distinct bytes received, for O(1) completion
	totalLen  int // payload length once the last fragment arrives; -1 until
	deadline  float64
}

const (
	// fragTimeout is how long partial datagrams are kept (BSD uses 30 s;
	// simulated time is cheap so we match).
	fragTimeout = 30.0
	// maxFragPayload bounds a reassembled datagram.
	maxFragPayload = 65535
	// maxFragStates caps concurrent partial datagrams per host. Without
	// a cap, a stream of first-fragments pins up to fragTimeout of
	// state each — an easy memory-exhaustion lever under impairment or
	// attack. At the cap the oldest partial datagram is evicted
	// (counted as a ReassemblyTimeouts, which is what it would have
	// become anyway).
	maxFragStates = 64
)

// fragmentOutput splits an IP payload into MTU-sized fragments and
// transmits each. Called by ipOutput when the datagram exceeds the MTU,
// so it inherits ipOutput's shard: fragments are built from the calling
// shard's pool and leave through its transmit queue.
func (ts *transportShard) fragmentOutput(m *mbuf.Mbuf, proto byte, dst layers.IPAddr, mtu int) {
	h := ts.h
	// Contiguous returns a view into the chain's own buffer when it is a
	// single mbuf, so the chain must stay alive until the last fragment
	// has been copied out — freeing first hands the cluster back to the
	// pool, where the first FromBytes below immediately reuses (and
	// clobbers) it.
	payload := m.Contiguous()
	defer m.FreeChain()
	// Per-fragment payload: MTU minus the IP header, rounded down to a
	// multiple of 8 (fragment offsets are in 8-byte units).
	per := (mtu - layers.IPv4MinLen) / 8 * 8
	if per <= 0 {
		panic("netstack: MTU too small to fragment")
	}
	id := h.nextIPID()
	for off := 0; off < len(payload); off += per {
		end := off + per
		mf := byte(0x1)
		if end >= len(payload) {
			end = len(payload)
			mf = 0
		}
		frag := ts.pool.FromBytes(payload[off:end])
		ip := layers.IPv4{
			TotalLen: layers.IPv4MinLen + (end - off),
			ID:       id,
			Flags:    mf,
			FragOff:  off,
			TTL:      64,
			Protocol: proto,
			Src:      h.ip,
			Dst:      dst,
		}
		fm, hdr := frag.Prepend(layers.IPv4MinLen)
		ip.Encode(hdr)
		eth := layers.Ethernet{Dst: MACFor(dst), Src: h.mac, EtherType: layers.EtherTypeIPv4}
		fm, hdr = fm.Prepend(layers.EthernetLen)
		eth.Encode(hdr)
		inc(&h.Counters.FramesOut)
		inc(&h.Counters.FragmentsSent)
		ts.transmit(frame{dst: eth.Dst, m: fm})
	}
}

// reassemble folds one received fragment in. It returns the complete
// payload when the datagram finishes, or nil while holes remain. All
// fragments of one datagram hash to the same shard (RSS falls back to
// the IP ID for fragments), so the shard's frags map needs no lock.
// A declared cold step off the hot ipInput: fragmented datagrams are
// the exception in a small-message protocol, and reassembly buffers
// allocate by design.
//
//ldlp:coldpath
func (ts *transportShard) reassemble(p *Packet) []byte {
	h := ts.h
	if ts.frags == nil {
		// Lazily built, pre-sized for the cap: the table never needs to
		// grow, so reassembly never migrates.
		ts.frags = flowtable.New[fragKey, *fragState](maxFragStates, fragHash)
	}
	key := fragKey{src: p.IP.Src, id: p.IP.ID, proto: p.IP.Protocol}
	fragPayload := p.M.Contiguous()
	off := p.IP.FragOff
	end := off + len(fragPayload)
	if end > maxFragPayload {
		// Malformed fragment: drop it alone. It must not tear down a
		// legitimate in-progress datagram that happens to share its key
		// (that would let one spoofed fragment veto any reassembly).
		inc(&h.Counters.BadIP)
		return nil
	}
	st, _ := ts.frags.Lookup(key)
	if st == nil {
		if ts.frags.Len() >= maxFragStates {
			ts.evictOldestFrag()
		}
		st = &fragState{totalLen: -1, deadline: h.net.now + fragTimeout}
		ts.frags.Insert(key, st)
		// All partial datagrams share one timeout, so appending here
		// keeps fragq in deadline order — the O(1) eviction depends on
		// it.
		ts.fragq = append(ts.fragq, fragQEntry{key: key, st: st})
	}
	if end > len(st.data) {
		if end <= cap(st.data) {
			// Reuse slack from an earlier doubling — no allocation, and
			// make-grown regions are already zeroed.
			st.data = st.data[:end]
			st.have = st.have[:end]
		} else {
			// Double capacity so a k-fragment datagram reallocates
			// O(log k) times, not k.
			newCap := 2 * cap(st.data)
			if newCap < end {
				newCap = end
			}
			if newCap > maxFragPayload {
				newCap = maxFragPayload
			}
			grown := make([]byte, end, newCap)
			copy(grown, st.data)
			st.data = grown
			grownHave := make([]bool, end, newCap)
			copy(grownHave, st.have)
			st.have = grownHave
		}
	}
	copy(st.data[off:end], fragPayload)
	for i := off; i < end; i++ {
		if !st.have[i] {
			st.have[i] = true
			st.haveBytes++
		}
	}
	if !p.IP.MoreFragments() {
		st.totalLen = end
	}
	// Fast reject while incomplete: the byte count cannot reach totalLen
	// before every in-range byte arrived (overlaps count once). Then one
	// confirming scan — a malformed fragment past the announced end could
	// inflate the count — which runs only when completion is plausible.
	if st.totalLen < 0 || len(st.data) < st.totalLen || st.haveBytes < st.totalLen {
		return nil
	}
	for i := 0; i < st.totalLen; i++ {
		if !st.have[i] {
			return nil
		}
	}
	ts.frags.Delete(key)
	inc(&h.Counters.Reassembled)
	return st.data[:st.totalLen]
}

// adoptFrag takes ownership of a partial reassembly migrated from
// another shard (dispatch rebalancing re-homed its datagram's flow
// key). Pump-side at quiescence. fragq stays deadline-ordered: the
// adopted state keeps its original deadline, so it is inserted at its
// sorted position rather than appended (migrated states are the one
// source of out-of-order deadlines).
func (ts *transportShard) adoptFrag(k fragKey, st *fragState) {
	if ts.frags == nil {
		ts.frags = flowtable.New[fragKey, *fragState](maxFragStates, fragHash)
	}
	if ts.frags.Len() >= maxFragStates {
		ts.evictOldestFrag()
	}
	ts.frags.Insert(k, st)
	i := len(ts.fragq)
	ts.fragq = append(ts.fragq, fragQEntry{})
	for i > 0 && ts.fragq[i-1].st.deadline > st.deadline {
		ts.fragq[i] = ts.fragq[i-1]
		i--
	}
	ts.fragq[i] = fragQEntry{key: k, st: st}
}

// fragsLen reports live partial reassemblies (nil-safe: the table is
// built lazily on the first fragment).
func (ts *transportShard) fragsLen() int {
	if ts.frags == nil {
		return 0
	}
	return ts.frags.Len()
}

// evictOldestFrag reclaims the partial datagram closest to expiry (the
// oldest, since all share one timeout), making room for a new one at
// the maxFragStates cap. Counted as a reassembly timeout: the datagram
// is abandoned exactly as if its timer had fired. O(1) amortized: the
// fragq queue is in insertion == deadline order, and each entry is
// examined at most once ever — entries whose datagram already
// completed, expired, or was evicted are recognized by the state
// pointer no longer being the table's and skipped.
func (ts *transportShard) evictOldestFrag() {
	for len(ts.fragq) > 0 {
		e := ts.fragq[0]
		ts.fragq = ts.fragq[1:]
		if cur, ok := ts.frags.Lookup(e.key); ok && cur == e.st {
			ts.frags.Delete(e.key)
			inc(&ts.h.Counters.ReassemblyTimeouts)
			return
		}
	}
}

// fragTick expires stale partial datagrams. Pump-side at quiescence,
// like tcpTick, walking every shard's table (Range tolerates the
// deletes; nothing here inserts).
//
//ldlp:quiescent
func (h *Host) fragTick() {
	for _, ts := range h.tshards {
		if ts.frags == nil {
			continue
		}
		ts.frags.Range(func(key fragKey, st *fragState) bool {
			if h.net.now >= st.deadline {
				ts.frags.Delete(key)
				inc(&h.Counters.ReassemblyTimeouts)
			}
			return true
		})
		if ts.frags.Len() == 0 {
			ts.fragq = ts.fragq[:0]
		}
	}
}
