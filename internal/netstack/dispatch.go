package netstack

// Receive-side dispatch rebalancing: the pump-side half of the
// internal/dispatch tentpole. Every Net.Tick, after the timers, each
// host hands its dispatch policy the per-shard load window and applies
// whatever migrations the policy returns — moving the covered flows'
// transport state (PCBs, in-progress reassemblies) to the new owner.
//
// Why this preserves per-flow FIFO order: dispatchTick runs on the pump
// goroutine while the shard workers are quiescent (Net.Tick fires
// timers before pumping, and the previous pump ended with every shard
// drained), so no frame of any flow is queued or in flight when the
// routing table changes. Frames of a migrated flow that arrive after
// the change route to the new shard — whose queue is empty of that
// flow — and are processed there in arrival order; frames processed
// before the change completed on the old shard in arrival order. The
// hand-off itself moves state through plain writes that the workers
// observe via the engine's channel sends (happens-before). So the
// migration point is a clean cut: order within the flow is the
// concatenation of two FIFO segments. The dispatch package's
// FIFO-under-migration property test exercises exactly this schedule.

import (
	"ldlp/internal/dispatch"
	"ldlp/internal/layers"
)

// DispatchStats is a host's receive-side dispatch view for telemetry
// and tests: which policy routes frames, how much rebalancing it has
// done, and how evenly the shards are loaded. Pump-side: read while the
// network is quiescent.
type DispatchStats struct {
	Policy        string  `json:"policy"`
	Rebalances    int64   `json:"rebalances"`    // rebalance rounds that moved something
	BucketMoves   int64   `json:"bucketMoves"`   // indirection-table entries re-homed
	FlowsMigrated int64   `json:"flowsMigrated"` // TCP connections moved between shards
	FragsMigrated int64   `json:"fragsMigrated"` // partial reassemblies moved
	ShardFrames   []int64 `json:"shardFrames"`   // frames processed per shard, cumulative
	// Imbalance is max(ShardFrames) * shards / sum(ShardFrames): 1.0 is
	// a perfectly even spread, shards (= every frame on one shard) the
	// worst case. 0 before any traffic.
	Imbalance float64 `json:"imbalance"`
}

// DispatchStats reports the host's dispatch policy activity and
// per-shard frame balance.
func (h *Host) DispatchStats() DispatchStats {
	out := DispatchStats{
		Policy:        h.policy.Name(),
		Rebalances:    h.rebalances,
		BucketMoves:   h.bucketMoves,
		FlowsMigrated: h.flowsMigrated,
		FragsMigrated: h.fragsMigrated,
	}
	if h.sharded {
		out.ShardFrames = make([]int64, h.shards.NumShards())
		for i := range out.ShardFrames {
			out.ShardFrames[i] = h.shards.ShardStats(i).Processed
		}
	} else {
		out.ShardFrames = []int64{h.stack.Stats().Processed}
	}
	var total, maxv int64
	for _, v := range out.ShardFrames {
		total += v
		if v > maxv {
			maxv = v
		}
	}
	if total > 0 {
		out.Imbalance = float64(maxv) * float64(len(out.ShardFrames)) / float64(total)
	}
	return out
}

// dispatchTick is the policy's rebalance point: compute each shard's
// load since the last tick, ask the policy for migrations, apply them.
// Pump-side at quiescence — it rewrites shard-owned transport state.
//
//ldlp:quiescent
func (h *Host) dispatchTick() {
	if !h.sharded {
		return
	}
	loads := make([]int64, len(h.tshards))
	for i := range loads {
		cur := h.shards.ShardStats(i).Processed
		loads[i] = cur - h.prevShardLoad[i]
		h.prevShardLoad[i] = cur
	}
	migs := h.policy.Rebalance(loads)
	if len(migs) == 0 {
		return
	}
	h.rebalances++
	h.bucketMoves += int64(len(migs))
	for _, mg := range migs {
		h.applyMigration(mg)
	}
}

// applyMigration re-homes every flow the migration covers from its old
// shard to its new one: TCP connections (flow table + cache entry +
// PCB back-pointer) and in-progress reassemblies (fragments key by IP
// ID, so a covered datagram's reassembly state moves with its future
// fragments). The covered-key test uses the same canonical key builders
// the data plane uses (dispatch.TupleKey / dispatch.FragmentKey), so
// exactly the flows whose frames now route to the new shard move —
// no more, no less. Pump-side at quiescence: collect during Range,
// mutate after (the flow table tolerates deletes mid-Range but not
// inserts).
//
//ldlp:quiescent
func (h *Host) applyMigration(mg dispatch.Migration) {
	if mg.From == mg.To || mg.From >= len(h.tshards) || mg.To >= len(h.tshards) {
		return
	}
	from, to := h.tshards[mg.From], h.tshards[mg.To]
	var tuples []fourTuple
	var pcbs []*tcpPCB
	from.pcbs.Range(func(t fourTuple, pcb *tcpPCB) bool {
		if mg.Covers(dispatch.TupleKey(t.raddr, h.ip, layers.ProtoTCP, t.rport, t.lport)) {
			tuples = append(tuples, t)
			pcbs = append(pcbs, pcb)
		}
		return true
	})
	for i, t := range tuples {
		// Only the owning shard's cache may hold a flow's entry; every
		// migration re-establishes that by invalidating at the source.
		from.pcbCache.Invalidate(t)
		from.pcbs.Delete(t)
		pcbs[i].owner = to
		to.pcbs.Insert(t, pcbs[i])
		h.flowsMigrated++
	}
	if from.frags != nil {
		var fkeys []fragKey
		var fsts []*fragState
		from.frags.Range(func(k fragKey, st *fragState) bool {
			if mg.Covers(dispatch.FragmentKey(k.src, h.ip, k.proto, k.id)) {
				fkeys = append(fkeys, k)
				fsts = append(fsts, st)
			}
			return true
		})
		for i, k := range fkeys {
			from.frags.Delete(k)
			// The source's fragq entry goes stale; evictOldestFrag's
			// pointer check skips it.
			to.adoptFrag(k, fsts[i])
			h.fragsMigrated++
		}
	}
}
