package netstack

import (
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/mbuf"
)

// TestCloseFreesQueuedTx covers the error path ldlpvet's mbufown work
// surfaced: under LDLP, transmit parks outbound frames in the host txq
// until the next pump, so a Send followed by Close without a pump left
// those frames (and their mbuf chains) permanently in flight. Close must
// drain each host's txq.
func TestCloseFreesQueuedTx(t *testing.T) {
	n, a, _ := twoHosts(t, core.LDLP)
	s, err := a.UDPSocket(9)
	if err != nil {
		t.Fatal(err)
	}
	s.SendTo(ipB, 9, []byte("never pumped"))
	if a.queuedTx() == 0 {
		t.Fatal("expected SendTo under LDLP to queue a tx frame")
	}
	n.Close()
	if st := mbuf.PoolStats(); st.InUse != 0 {
		t.Errorf("tx frames queued at Close leaked: %+v", st)
	}
}
