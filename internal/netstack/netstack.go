// Package netstack is a runnable, in-memory TCP/IP-lite protocol stack
// built on the repository's substrates: mbuf chains for buffering,
// layers for wire formats, checksum for integrity, and the core LDLP
// engine for receive-path scheduling.
//
// It mirrors the structure whose working set §2 of the paper measures —
// device input, Ethernet demux, IP input, TCP with a fast path and a
// single-entry PCB cache, delayed ACKs every second data segment, and a
// socket layer — and its receive path can run under either the
// conventional or the LDLP discipline, so the examples can exercise the
// paper's scheduling idea over a real protocol stack.
//
// The whole network is single-threaded and explicitly pumped: hosts
// exchange frames through a Net, and time advances only via Tick. That
// keeps every test deterministic.
package netstack

import (
	"fmt"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

// Packet is the unit flowing up the receive path: an mbuf chain plus the
// decoded headers so far (preallocated, gopacket-style).
type Packet struct {
	M   *mbuf.Mbuf
	Eth layers.Ethernet
	IP  layers.IPv4
	TCP layers.TCP
	UDP layers.UDP
}

// Counters is the per-host accounting the tests and examples inspect.
type Counters struct {
	FramesIn, FramesOut int64
	BadEther            int64 // wrong MAC or unknown ethertype
	BadIP               int64 // checksum/version/length failures
	BadTCP, BadUDP      int64 // checksum/port failures
	BadICMP             int64
	NoSocket            int64
	TCPFastPath         int64
	TCPSlowPath         int64
	PCBCacheHits        int64
	PCBCacheMisses      int64
	AcksSent            int64
	DelayedAcks         int64
	Retransmits         int64
	DataSegsIn          int64
	EchoRequests        int64
	EchoReplies         int64
	Fragments           int64 // fragments received
	FragmentsSent       int64
	Reassembled         int64 // datagrams completed from fragments
	ReassemblyTimeouts  int64
	TxBatches           int64 // transmit-side LDLP: queued-output flushes
	TxMaxBatch          int   // largest single transmit flush
	WindowProbes        int64 // zero-window persist probes sent
}

// Options configures a host.
type Options struct {
	// Discipline selects the receive-path schedule (conventional
	// call-through or LDLP batching). Under LDLP the transmit side also
	// batches: frames generated while processing a receive batch are
	// flushed to the wire together, lestart-style (the transmit-side
	// LDLP the paper notes but does not evaluate).
	Discipline core.Discipline
	// BatchLimit caps LDLP batches at the device layer (0 = unlimited).
	BatchLimit int
	// InputLimit bounds frames buffered in the receive path (drop-tail).
	InputLimit int
	// MTU is the link MTU; IP datagrams beyond it are fragmented.
	// 0 means 1500.
	MTU int
}

// DefaultOptions mirror the paper's LDLP setup bounded by a 500-packet
// buffer.
func DefaultOptions(d core.Discipline) Options {
	return Options{Discipline: d, BatchLimit: 14, InputLimit: 500, MTU: 1500}
}

// mtu returns the effective MTU.
func (o Options) mtu() int {
	if o.MTU <= 0 {
		return 1500
	}
	return o.MTU
}

// frame is a wire frame in flight between hosts.
type frame struct {
	dst  layers.MACAddr
	data []byte
}

// Net is a broadcast segment connecting hosts, with an explicit clock.
type Net struct {
	hosts  map[layers.MACAddr]*Host
	byIP   map[layers.IPAddr]*Host
	wire   []frame
	now    float64
	inPump bool
	// Loss, if set, is consulted per frame; returning true drops it
	// (failure injection for retransmission tests).
	Loss func(dst layers.IPAddr, data []byte) bool
}

// NewNet creates an empty network segment.
func NewNet() *Net {
	return &Net{hosts: make(map[layers.MACAddr]*Host), byIP: make(map[layers.IPAddr]*Host)}
}

// Now returns the simulated time in seconds.
func (n *Net) Now() float64 { return n.now }

// MACFor derives the static MAC address for an IP (this stack uses a
// fixed mapping instead of ARP; §2's trace shows arpresolve as pure
// overhead on the fast path, which a static mapping makes explicit).
func MACFor(ip layers.IPAddr) layers.MACAddr {
	return layers.MACAddr{0x02, 0x00, ip[0], ip[1], ip[2], ip[3]}
}

// AddHost creates a host attached to this network.
func (n *Net) AddHost(name string, ip layers.IPAddr, opts Options) *Host {
	if _, dup := n.byIP[ip]; dup {
		panic(fmt.Sprintf("netstack: duplicate IP %v", ip))
	}
	h := newHost(n, name, ip, opts)
	n.hosts[h.mac] = h
	n.byIP[ip] = h
	return h
}

// send queues a frame for delivery.
func (n *Net) send(f frame) {
	n.wire = append(n.wire, f)
}

// RunUntilIdle delivers frames and pumps hosts until the network is
// quiescent. Returns the number of frames delivered.
func (n *Net) RunUntilIdle() int {
	if n.inPump {
		return 0 // output during processing is collected by the outer pump
	}
	n.inPump = true
	defer func() { n.inPump = false }()
	delivered := 0
	for guard := 0; ; guard++ {
		if guard > 1_000_000 {
			panic("netstack: network failed to quiesce (routing loop?)")
		}
		if len(n.wire) == 0 {
			// Let every host drain its LDLP queues; processing can emit
			// more frames.
			progress := false
			for _, h := range n.hosts {
				if h.process() > 0 {
					progress = true
				}
			}
			if !progress && len(n.wire) == 0 {
				return delivered
			}
			continue
		}
		f := n.wire[0]
		n.wire = n.wire[1:]
		dst, ok := n.hosts[f.dst]
		if !ok {
			continue // frame to nowhere
		}
		if n.Loss != nil && n.Loss(dst.ip, f.data) {
			continue
		}
		dst.deliver(f.data)
		delivered++
	}
}

// Tick advances simulated time (firing TCP timers) and pumps the network.
func (n *Net) Tick(dt float64) {
	n.now += dt
	for _, h := range n.hosts {
		h.tick()
	}
	n.RunUntilIdle()
}

// Host is one endpoint: a NIC, the input protocol stack, transport state
// and sockets.
type Host struct {
	net  *Net
	name string
	mac  layers.MACAddr
	ip   layers.IPAddr
	opts Options

	stack  *core.Stack[*Packet]
	device *core.Layer[*Packet]
	ether  *core.Layer[*Packet]
	ipin   *core.Layer[*Packet]
	tcpin  *core.Layer[*Packet]
	udpin  *core.Layer[*Packet]
	icmpin *core.Layer[*Packet]
	sock   *core.Layer[*Packet]

	Counters Counters

	ipID uint16

	// Transmit-side batching (LDLP): frames queued during processing,
	// flushed together.
	txq []frame

	// ICMP state (icmp.go).
	pingReplies []PingReply

	// Reassembly state (frag.go).
	frags map[fragKey]*fragState

	// TCP state (tcp.go).
	pcbs      map[fourTuple]*tcpPCB
	listeners map[uint16]*TCPListener
	pcbCache  *tcpPCB

	// UDP state (udp.go).
	udpSocks map[uint16]*UDPSock
}

// newHost wires up the receive path: device -> ether -> ip -> {tcp,udp}
// -> socket.
func newHost(n *Net, name string, ip layers.IPAddr, opts Options) *Host {
	h := &Host{
		net: n, name: name, ip: ip, mac: MACFor(ip), opts: opts,
		pcbs:      make(map[fourTuple]*tcpPCB),
		listeners: make(map[uint16]*TCPListener),
		udpSocks:  make(map[uint16]*UDPSock),
	}
	h.stack = core.NewStack[*Packet](core.Options{
		Discipline: opts.Discipline,
		BatchLimit: opts.BatchLimit,
		MaxQueued:  opts.InputLimit,
	})
	h.device = h.stack.AddLayer("device", h.deviceInput)
	h.ether = h.stack.AddLayer("ether", h.etherInput)
	h.ipin = h.stack.AddLayer("ip", h.ipInput)
	h.tcpin = h.stack.AddLayer("tcp", h.tcpInput)
	h.udpin = h.stack.AddLayer("udp", h.udpInput)
	h.icmpin = h.stack.AddLayer("icmp", h.icmpInput)
	h.sock = h.stack.AddLayer("socket", h.sockInput)
	h.stack.Link(h.device, h.ether)
	h.stack.Link(h.ether, h.ipin)
	h.stack.Link(h.ipin, h.tcpin)
	h.stack.Link(h.ipin, h.udpin)
	h.stack.Link(h.ipin, h.icmpin)
	h.stack.Link(h.tcpin, h.sock)
	h.stack.Link(h.udpin, h.sock)
	h.stack.Link(h.icmpin, h.sock)
	return h
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// IP returns the host's address.
func (h *Host) IP() layers.IPAddr { return h.ip }

// StackStats exposes the LDLP engine counters (batch sizes, queue ops).
func (h *Host) StackStats() core.Stats { return h.stack.Stats() }

// Now returns the network's simulated time, for protocol timers built on
// top of the stack.
func (h *Host) Now() float64 { return h.net.now }

// deliver receives a frame from the wire into the protocol stack.
func (h *Host) deliver(data []byte) {
	h.Counters.FramesIn++
	pkt := &Packet{M: mbuf.FromBytes(data)}
	if err := h.stack.Inject(pkt); err != nil {
		pkt.M.FreeChain()
	}
}

// process drains the LDLP queues (no-op under conventional, where Inject
// already ran the stack) and flushes the transmit queue.
func (h *Host) process() int {
	n := int(h.stack.Run())
	return n + h.flushTx()
}

// transmit hands a frame to the wire — immediately under conventional
// processing, queued for a batched flush under LDLP.
func (h *Host) transmit(f frame) {
	if h.opts.Discipline == core.LDLP {
		h.txq = append(h.txq, f)
		return
	}
	h.net.send(f)
}

// flushTx drains the transmit queue in one batch.
func (h *Host) flushTx() int {
	n := len(h.txq)
	if n == 0 {
		return 0
	}
	if n > h.Counters.TxMaxBatch {
		h.Counters.TxMaxBatch = n
	}
	h.Counters.TxBatches++
	for _, f := range h.txq {
		h.net.send(f)
	}
	h.txq = h.txq[:0]
	return n
}

// deviceInput models the driver layer: frame length sanity.
func (h *Host) deviceInput(p *Packet, emit core.Emit[*Packet]) {
	if p.M.PktLen() < layers.EthernetLen {
		h.Counters.BadEther++
		p.M.FreeChain()
		return
	}
	emit(h.ether, p)
}

// etherInput decodes and strips the Ethernet header and demuxes on
// ethertype.
func (h *Host) etherInput(p *Packet, emit core.Emit[*Packet]) {
	buf := p.M.Bytes()
	n, err := p.Eth.Decode(buf)
	if err != nil {
		h.Counters.BadEther++
		p.M.FreeChain()
		return
	}
	if p.Eth.Dst != h.mac && p.Eth.Dst != (layers.MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) {
		h.Counters.BadEther++
		p.M.FreeChain()
		return
	}
	p.M.Adj(n)
	if p.Eth.EtherType != layers.EtherTypeIPv4 {
		h.Counters.BadEther++
		p.M.FreeChain()
		return
	}
	emit(h.ipin, p)
}

// ipInput validates the IP header, trims padding, strips the header and
// demuxes on protocol.
func (h *Host) ipInput(p *Packet, emit core.Emit[*Packet]) {
	var err error
	p.M, err = p.M.Pullup(min(p.M.PktLen(), layers.IPv4MinLen))
	if err != nil {
		h.Counters.BadIP++
		p.M.FreeChain()
		return
	}
	n, err := p.IP.Decode(p.M.Bytes())
	if err != nil {
		h.Counters.BadIP++
		p.M.FreeChain()
		return
	}
	if p.IP.Dst != h.ip {
		h.Counters.BadIP++
		p.M.FreeChain()
		return
	}
	if p.IP.TotalLen > p.M.PktLen() {
		h.Counters.BadIP++
		p.M.FreeChain()
		return
	}
	// Trim link-layer padding beyond TotalLen, then strip the header.
	p.M.Adj(-(p.M.PktLen() - p.IP.TotalLen))
	p.M.Adj(n)
	if p.IP.IsFragment() {
		// The slow path the paper's traced fast path never sees: hold the
		// fragment until the datagram completes, then continue the demux
		// with the reassembled payload.
		h.Counters.Fragments++
		whole := h.reassemble(p)
		p.M.FreeChain()
		if whole == nil {
			return
		}
		p.M = mbuf.FromBytes(whole)
		p.IP.TotalLen = layers.IPv4MinLen + len(whole)
		p.IP.Flags, p.IP.FragOff = 0, 0
	}
	switch p.IP.Protocol {
	case layers.ProtoTCP:
		emit(h.tcpin, p)
	case layers.ProtoUDP:
		emit(h.udpin, p)
	case layers.ProtoICMP:
		emit(h.icmpin, p)
	default:
		h.Counters.BadIP++
		p.M.FreeChain()
	}
}

// sockInput is the top of the receive path: the transport layers have
// already appended payload to the owning socket; this layer models the
// wakeup.
func (h *Host) sockInput(p *Packet, emit core.Emit[*Packet]) {
	p.M.FreeChain()
	emit(nil, p)
}

// ipOutput wraps a transport segment in IP + Ethernet and transmits,
// fragmenting datagrams that exceed the link MTU.
func (h *Host) ipOutput(m *mbuf.Mbuf, proto byte, dst layers.IPAddr) {
	mtu := h.opts.mtu()
	if layers.IPv4MinLen+m.PktLen() > mtu {
		h.fragmentOutput(m, proto, dst, mtu)
		return
	}
	h.ipID++
	ip := layers.IPv4{
		TotalLen: layers.IPv4MinLen + m.PktLen(),
		ID:       h.ipID,
		TTL:      64,
		Protocol: proto,
		Src:      h.ip,
		Dst:      dst,
	}
	m, hdr := m.Prepend(layers.IPv4MinLen)
	ip.Encode(hdr)
	eth := layers.Ethernet{Dst: MACFor(dst), Src: h.mac, EtherType: layers.EtherTypeIPv4}
	m, hdr = m.Prepend(layers.EthernetLen)
	eth.Encode(hdr)
	h.Counters.FramesOut++
	h.transmit(frame{dst: eth.Dst, data: append([]byte(nil), m.Contiguous()...)})
	m.FreeChain()
}

// tick fires host timers (TCP retransmit / delayed ACK, reassembly
// expiry).
func (h *Host) tick() {
	h.tcpTick()
	h.fragTick()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
