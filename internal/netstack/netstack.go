// Package netstack is a runnable, in-memory TCP/IP-lite protocol stack
// built on the repository's substrates: mbuf chains for buffering,
// layers for wire formats, checksum for integrity, and the core LDLP
// engine for receive-path scheduling.
//
// It mirrors the structure whose working set §2 of the paper measures —
// device input, Ethernet demux, IP input, TCP with a fast path and a
// single-entry PCB cache, delayed ACKs every second data segment, and a
// socket layer — and its receive path can run under either the
// conventional or the LDLP discipline, so the examples can exercise the
// paper's scheduling idea over a real protocol stack.
//
// The network is explicitly pumped: hosts exchange frames through a Net,
// and time advances only via Tick. With Options.RxShards <= 1 everything
// is single-threaded and every test is deterministic. With RxShards > 1
// a host's receive path runs on the sharded LDLP engine: frames are
// partitioned across worker cores by their TCP/UDP 4-tuple (fragments by
// IP ID), so each connection's segments are processed by one shard in
// arrival order — per-connection TCP ordering is preserved — while
// distinct flows proceed in parallel, each shard keeping the paper's
// per-layer code locality.
//
// Transport state is sharded the same way (see transportShard): the flow
// hash that routes a frame to a worker also owns that flow's PCB,
// reassembly state, transmit queue and mbuf shard, so a segment touches
// its connection with no lock at all — there is no per-host transport
// mutex. The rare cross-shard operations go through explicit hand-off
// points instead: a reassembled datagram whose flow hashes elsewhere is
// re-injected through the engine, Accept moves only the socket handle
// (under the listener's lock, reading an atomic handshake flag), global
// counters use atomic adds, and the pump (timers, public socket calls,
// Net.Close) touches shard state only while the workers are quiescent.
// The shardaffinity analyzer in ldlpvet enforces that discipline
// statically. Public socket calls must not overlap a running pump (drive
// the Net from one goroutine, as the examples do).
package netstack

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ldlp/internal/core"
	"ldlp/internal/dispatch"
	"ldlp/internal/faults"
	"ldlp/internal/flowtable"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/telemetry"
)

// Packet is the unit flowing up the receive path: an mbuf chain plus the
// decoded headers so far (preallocated, gopacket-style).
type Packet struct {
	M   *mbuf.Mbuf
	Eth layers.Ethernet
	IP  layers.IPv4
	TCP layers.TCP
	UDP layers.UDP
	// reinjected marks a datagram that was reassembled on one shard and
	// re-injected to the shard owning its flow — the one packet source
	// that is not the wire. The FIFO-preservation suite keys on it:
	// cross-shard reinjection re-queues the datagram behind frames the
	// owning shard already accepted, so its ledger effects may interleave
	// differently than a single-threaded run's.
	reinjected bool
}

// Counters is the per-host accounting the tests and examples inspect.
// Fields are updated with atomic adds (shard workers may race on them);
// read them while the network is quiescent.
type Counters struct {
	FramesIn, FramesOut int64
	BadEther            int64 // wrong MAC or unknown ethertype
	BadIP               int64 // checksum/version/length failures
	BadTCP, BadUDP      int64 // checksum/port failures
	BadICMP             int64
	NoSocket            int64
	TCPFastPath         int64
	TCPSlowPath         int64
	PCBCacheHits        int64
	PCBCacheMisses      int64
	AcksSent            int64
	DelayedAcks         int64
	Retransmits         int64
	DataSegsIn          int64
	EchoRequests        int64
	EchoReplies         int64
	Fragments           int64 // fragments received
	FragmentsSent       int64
	Reassembled         int64 // datagrams completed from fragments
	ReassemblyTimeouts  int64
	// TCPReinjects counts reassembled TCP datagrams that crossed shards
	// through the reinject hand-off. Such a datagram re-enters the owning
	// shard's queue behind segments already accepted there, so its ACK
	// ledger can interleave differently than single-threaded processing —
	// the equivalence harness asserts this stays 0 in runs it compares
	// ledgers for (the checked invariant that replaced PR 6's documented
	// caveat).
	TCPReinjects int64
	TxBatches           int64 // transmit-side LDLP: queued-output flushes
	TxMaxBatch          int   // largest single transmit flush
	WindowProbes        int64 // zero-window persist probes sent
	TimeoutDrops        int64 // connections reaped after retransmission gave up
}

// inc bumps a counter; atomic because sharded receive paths update
// counters from several worker goroutines.
func inc(c *int64) { atomic.AddInt64(c, 1) }

// Options configures a host.
type Options struct {
	// Discipline selects the receive-path schedule (conventional
	// call-through or LDLP batching). Under LDLP the transmit side also
	// batches: frames generated while processing a receive batch are
	// flushed to the wire together, lestart-style (the transmit-side
	// LDLP the paper notes but does not evaluate).
	Discipline core.Discipline
	// BatchLimit caps LDLP batches at the device layer (0 = unlimited).
	BatchLimit int
	// InputLimit bounds frames buffered in the receive path (drop-tail).
	InputLimit int
	// MTU is the link MTU; IP datagrams beyond it are fragmented.
	// 0 means 1500.
	MTU int
	// RxShards > 1 runs the receive path on the sharded LDLP engine:
	// that many worker goroutines, frames partitioned by 4-tuple flow
	// hash. Requires Discipline == LDLP (the conventional call-through
	// schedule has no queues to shard). 0 or 1 keeps the deterministic
	// single-threaded path.
	RxShards int
	// Faults, when non-nil, impairs this host's ingress link: every
	// frame addressed to the host passes through a seeded faults
	// Injector (loss, bursts, duplication, reordering, delay, bit
	// corruption, partitions). Equivalent to calling Net.Impair on the
	// host's address after AddHost.
	Faults *faults.Config
	// FaultSeed seeds the ingress injector (0 derives a stable seed
	// from the host's IP, so multi-host setups stay deterministic
	// without choosing seeds by hand).
	FaultSeed int64
	// TelemetryClock stamps the host's flight-recorder events. Nil uses
	// the Net's simulated clock (in nanoseconds), which keeps traces
	// deterministic per seed; real-time drivers (cmd/ldlptrace) inject a
	// monotonic wall clock instead.
	TelemetryClock telemetry.Clock
	// TelemetryRing sizes each shard's flight-recorder ring (<= 0 uses
	// the telemetry default).
	TelemetryRing int
	// FlowCacheSize sets each transport shard's recently-active flow
	// cache capacity — the N-entry generalization of the paper's
	// single-entry PCB cache. <= 0 uses flowtable.DefaultCacheSize (8).
	FlowCacheSize int
	// FlowCachePolicy selects the flow cache's eviction policy (LRU,
	// FIFO or random — the DEC-TR-592 comparison). The policy changes
	// only which entries stay warm, never lookup results, so any choice
	// preserves wire-level behaviour. Zero value is LRU.
	FlowCachePolicy flowtable.Policy
	// Dispatch selects the receive-side dispatch policy mapping frames
	// to shards (and, for dispatch.LoadAware, rebalancing hot flows at
	// quiescent points). Nil uses dispatch.Static — the classic flow-hash
	// modulo mapping. A policy instance must not be shared across hosts.
	Dispatch dispatch.Policy
}

// DefaultOptions mirror the paper's LDLP setup bounded by a 500-packet
// buffer.
func DefaultOptions(d core.Discipline) Options {
	return Options{Discipline: d, BatchLimit: 14, InputLimit: 500, MTU: 1500}
}

// ShardedOptions is DefaultOptions(LDLP) spread across shards worker
// cores.
func ShardedOptions(shards int) Options {
	o := DefaultOptions(core.LDLP)
	o.RxShards = shards
	return o
}

// mtu returns the effective MTU.
func (o Options) mtu() int {
	if o.MTU <= 0 {
		return 1500
	}
	return o.MTU
}

// frame is a wire frame in flight between hosts. It carries the sender's
// mbuf chain by reference — transmitting hands the chain's ownership to
// the wire and then to the receiving host's stack (§3.2's buffer hand-off
// discipline, extended across the link), so the TX path never copies
// frame bytes. Whoever drops a frame (no such host, loss injection,
// stack full) must free the chain.
type frame struct {
	dst layers.MACAddr
	m   *mbuf.Mbuf
	// impaired marks a frame that already received its one fault
	// verdict (held for delay/reorder, or an injected duplicate), so
	// re-dequeuing it delivers without a second draw.
	impaired bool
}

// heldFrame is an impaired frame parked until the clock reaches due.
type heldFrame struct {
	due float64
	f   frame
}

// Net is a broadcast segment connecting hosts, with an explicit clock.
type Net struct {
	hosts  map[layers.MACAddr]*Host
	byIP   map[layers.IPAddr]*Host
	wire   []frame
	now    float64
	inPump bool
	// Loss, if set, is consulted per frame; returning true drops it
	// (failure injection for retransmission tests). Runs before any
	// Impair injector.
	Loss func(dst layers.IPAddr, data []byte) bool
	// impair holds the per-destination link injectors; held parks
	// delayed frames until a Tick advances the clock past their due
	// time.
	impair map[layers.IPAddr]*faults.Injector
	held   []heldFrame
	// carrier, when set, takes every transmitted frame instead of the
	// Net's own broadcast wire (see SetCarrier): the topology layer owns
	// routing, latency and per-link impairment from that point on.
	carrier func(dst layers.MACAddr, m *mbuf.Mbuf)
}

// NewNet creates an empty network segment.
func NewNet() *Net {
	return &Net{hosts: make(map[layers.MACAddr]*Host), byIP: make(map[layers.IPAddr]*Host)}
}

// Impair installs a seeded fault injector on the link toward dst: every
// frame addressed to dst is subject to cfg's impairments. seed 0
// derives a stable per-destination default. Replaces any previous
// injector for dst (cfg.Enabled() == false removes it). Returns the
// installed injector so callers can read its per-impairment counters;
// install before pumping traffic, not mid-pump.
func (n *Net) Impair(dst layers.IPAddr, cfg faults.Config, seed int64) *faults.Injector {
	if !cfg.Enabled() {
		delete(n.impair, dst)
		return nil
	}
	if seed == 0 {
		seed = int64(dst[0])<<24 | int64(dst[1])<<16 | int64(dst[2])<<8 | int64(dst[3]) | 1
	}
	if n.impair == nil {
		n.impair = make(map[layers.IPAddr]*faults.Injector)
	}
	inj := faults.New(cfg, seed)
	n.impair[dst] = inj
	return inj
}

// ImpairAll installs cfg on the ingress link of every host currently
// attached, each with a distinct seed derived from base, and returns
// the injectors by address.
func (n *Net) ImpairAll(cfg faults.Config, base int64) map[layers.IPAddr]*faults.Injector {
	out := make(map[layers.IPAddr]*faults.Injector)
	for ip := range n.byIP {
		hostBits := int64(ip[0])<<24 | int64(ip[1])<<16 | int64(ip[2])<<8 | int64(ip[3])
		if inj := n.Impair(ip, cfg, base*1_000_003+hostBits); inj != nil {
			out[ip] = inj
		}
	}
	return out
}

// InjectorFor returns the injector impairing dst's ingress, or nil.
func (n *Net) InjectorFor(dst layers.IPAddr) *faults.Injector { return n.impair[dst] }

// HeldFrames reports frames parked by delay impairment, awaiting a
// Tick past their due time.
func (n *Net) HeldFrames() int { return len(n.held) }

// Now returns the simulated time in seconds.
func (n *Net) Now() float64 { return n.now }

// MACFor derives the static MAC address for an IP (this stack uses a
// fixed mapping instead of ARP; §2's trace shows arpresolve as pure
// overhead on the fast path, which a static mapping makes explicit).
func MACFor(ip layers.IPAddr) layers.MACAddr {
	return layers.MACAddr{0x02, 0x00, ip[0], ip[1], ip[2], ip[3]}
}

// AddHost creates a host attached to this network.
func (n *Net) AddHost(name string, ip layers.IPAddr, opts Options) *Host {
	if _, dup := n.byIP[ip]; dup {
		panic(fmt.Sprintf("netstack: duplicate IP %v", ip))
	}
	h := newHost(n, name, ip, opts)
	n.hosts[h.mac] = h
	n.byIP[ip] = h
	if opts.Faults != nil {
		n.Impair(ip, *opts.Faults, opts.FaultSeed)
	}
	return h
}

// Close stops every host's shard workers (no-op for single-threaded
// hosts) and frees frames still parked on the wire or in delay holds,
// so tests that end mid-impairment do not read as mbuf leaks. Call
// when done with a network that uses RxShards or delay faults.
//
//ldlp:quiescent
func (n *Net) Close() {
	for _, f := range n.wire {
		f.m.FreeChain()
	}
	n.wire = nil
	for _, hf := range n.held {
		hf.f.m.FreeChain()
	}
	n.held = nil
	for _, h := range n.hosts {
		// LDLP batches outbound frames in the per-shard txqs until the
		// next pump; frames queued by a Send with no pump afterwards must
		// be freed here or they read as leaked mbufs.
		for _, ts := range h.tshards {
			for _, f := range ts.txq {
				f.m.FreeChain()
			}
			ts.txq = nil
		}
		h.Close()
	}
}

// send queues a frame for delivery (or hands it to the carrier when the
// Net is chassis for an external topology).
func (n *Net) send(f frame) {
	if n.carrier != nil {
		n.carrier(f.dst, f.m)
		return
	}
	//lint:ignore hotpathalloc per-pump wire queue, drained every pump; growth is amortized over the batch
	n.wire = append(n.wire, f)
}

// SetCarrier diverts every frame this Net's hosts transmit to carry,
// bypassing the built-in broadcast wire. With a carrier installed the
// Net is reduced to a chassis — a clock plus attached hosts — and an
// external topology layer (internal/fleet) owns frame routing, per-link
// latency/bandwidth and fault injection. The carrier takes ownership of
// each mbuf chain exactly as the wire would: deliver it to a host via
// InjectFrame, or free it.
//
// Drive carrier-backed hosts with InjectFrame/Pump/AdvanceTo, not
// Tick/RunUntilIdle (those pump the internal wire, which a carrier
// leaves permanently empty). Install before any traffic flows.
func (n *Net) SetCarrier(carry func(dst layers.MACAddr, m *mbuf.Mbuf)) {
	n.carrier = carry
}

// AdvanceTo moves simulated time forward to t (monotonic: earlier times
// are ignored, so interleaved per-node completion times from an external
// event scheduler cannot run the shared clock backwards). Unlike Tick it
// fires no timers and pumps nothing — the scheduler that owns the
// timeline decides when hosts run.
//
//ldlp:quiescent
func (n *Net) AdvanceTo(t float64) {
	if t > n.now {
		n.now = t
	}
}

// RunUntilIdle delivers frames and pumps hosts until the network is
// quiescent. Returns the number of frames delivered.
func (n *Net) RunUntilIdle() int {
	if n.inPump {
		return 0 // output during processing is collected by the outer pump
	}
	n.inPump = true
	defer func() { n.inPump = false }()
	delivered := 0
	for guard := 0; ; guard++ {
		if guard > 1_000_000 {
			panic("netstack: network failed to quiesce (routing loop?)")
		}
		if len(n.wire) == 0 {
			// Let every host drain its LDLP queues; processing can emit
			// more frames.
			progress := false
			for _, h := range n.hosts {
				if h.process() > 0 {
					progress = true
				}
			}
			if !progress && len(n.wire) == 0 {
				return delivered
			}
			continue
		}
		f := n.wire[0]
		n.wire = n.wire[1:]
		dst, ok := n.hosts[f.dst]
		if !ok {
			f.m.FreeChain() // frame to nowhere
			continue
		}
		if n.Loss != nil && n.Loss(dst.ip, f.m.Contiguous()) {
			f.m.FreeChain()
			continue
		}
		if !f.impaired {
			if inj := n.impair[dst.ip]; inj != nil && !n.impairFrame(inj, f, dst) {
				continue // dropped, held, or reordered — not delivered now
			}
		}
		dst.deliver(f.m)
		delivered++
	}
}

// impairFrame applies one fault verdict to a frame bound for dst.
// Returns true when the frame should be delivered immediately; false
// when it was dropped, parked for delay, or pushed back for reorder
// (the frame's chain has been freed or re-owned accordingly).
func (n *Net) impairFrame(inj *faults.Injector, f frame, dst *Host) bool {
	act := inj.Frame(n.now, f.m.PktLen()*8)
	var verdict telemetry.VerdictBits
	if act.Drop {
		verdict |= telemetry.VerdictDrop
	}
	if act.Duplicate {
		verdict |= telemetry.VerdictDuplicate
	}
	if act.CorruptBit >= 0 {
		verdict |= telemetry.VerdictCorrupt
	}
	if act.Delay > 0 {
		verdict |= telemetry.VerdictDelay
	}
	if act.ReorderSpan > 0 {
		verdict |= telemetry.VerdictReorder
	}
	if verdict != telemetry.VerdictDeliver {
		dst.telPump.Event(telemetry.EvFaultVerdict, 0, int64(verdict))
	}
	if act.Drop {
		f.m.FreeChain()
		return false
	}
	f.impaired = true
	if act.Duplicate {
		// The copy is pristine (taken before any corruption) and marked
		// impaired so it gets no second verdict. It queues behind the
		// frames already on the wire, like a duplicate born of a real
		// retransmitting link.
		dup := frame{dst: f.dst, m: dst.txPool.FromBytes(f.m.Contiguous()), impaired: true}
		n.wire = append(n.wire, dup)
	}
	if act.CorruptBit >= 0 {
		flipBit(f.m, act.CorruptBit)
	}
	if act.Delay > 0 {
		// Park until a Tick advances the clock past due. Explicitly
		// pumped time means sub-Tick delays still land on the next Tick,
		// never silently vanish.
		n.held = append(n.held, heldFrame{due: n.now + act.Delay, f: f})
		return false
	}
	if act.ReorderSpan > 0 && len(n.wire) > 0 {
		// Reinsert behind up to ReorderSpan frames currently on the wire.
		at := min(act.ReorderSpan, len(n.wire))
		n.wire = append(n.wire, frame{})
		copy(n.wire[at+1:], n.wire[at:])
		n.wire[at] = f
		return false
	}
	return true
}

// flipBit flips one bit of the chain's packet data, walking to the mbuf
// holding it (bit is already reduced modulo the packet's bit length).
func flipBit(m *mbuf.Mbuf, bit int) {
	off := bit / 8
	for cur := m; cur != nil; cur = cur.Next() {
		if off < cur.Len() {
			cur.Bytes()[off] ^= 1 << (bit % 8)
			return
		}
		off -= cur.Len()
	}
}

// releaseHeld moves delay-parked frames whose due time has passed back
// onto the wire, earliest due first (jittered delays may release out of
// arrival order — that is the reordering the impairment models).
func (n *Net) releaseHeld() {
	if len(n.held) == 0 {
		return
	}
	sort.SliceStable(n.held, func(i, j int) bool { return n.held[i].due < n.held[j].due })
	k := 0
	for k < len(n.held) && n.held[k].due <= n.now {
		n.wire = append(n.wire, n.held[k].f)
		k++
	}
	n.held = n.held[k:]
}

// Tick advances simulated time (releasing delay-held frames, firing TCP
// timers) and pumps the network.
func (n *Net) Tick(dt float64) {
	n.now += dt
	n.releaseHeld()
	for _, h := range n.hosts {
		h.tick()
	}
	n.RunUntilIdle()
}

// Host is one endpoint: a NIC, the input protocol stack, transport state
// and sockets.
type Host struct {
	net  *Net
	name string
	// id is a process-unique instance number (the host's mbuf pool
	// base), distinguishing same-named hosts from rebuilt Nets in the
	// expvar registry.
	id   int
	mac  layers.MACAddr
	ip   layers.IPAddr
	opts Options

	// Exactly one of the two receive engines is set: stack (with rx
	// holding its layers) when RxShards <= 1, shards when RxShards > 1.
	stack   *core.Stack[*Packet]
	rx      *rxPath
	shards  *core.ShardedStack[*Packet]
	sharded bool

	// rxs holds every receive pipeline (one single-threaded, or one per
	// shard), for pump-side sweeps at quiescence (free-queue flushes).
	rxs []*rxPath

	// tshards is the per-connection-sharded transport state, index-aligned
	// with the engine's receive shards (exactly one entry when single-
	// threaded). Touch an entry only from its owning shard worker, or from
	// the pump while the workers are quiescent — the shardaffinity
	// analyzer enforces that every access site is one of the declared
	// hand-off points.
	tshards []*transportShard

	// txPool is the mbuf shard pump-side transmit allocations (dial SYNs,
	// UDP sends, pings, retransmissions on shard 0's connections) draw
	// from; each receive shard's own allocations come from its
	// transportShard pool.
	txPool *mbuf.PoolShard

	// pktPool recycles Packet wrappers so the steady-state receive path
	// performs no heap allocation per frame.
	pktPool sync.Pool

	Counters Counters

	// ipID feeds outbound datagram IDs; atomic because shard workers and
	// the pump allocate IDs concurrently. Uniqueness per (src, dst, proto)
	// is all reassembly needs — ordering across shards is irrelevant.
	ipID atomic.Uint32

	// ICMP state (icmp.go). icmpMu guards pingReplies: echo replies from
	// different sources arrive on different shard workers.
	icmpMu      sync.Mutex
	pingReplies []PingReply

	// TCP listeners (tcp.go). The map itself changes only at quiescence
	// (ListenTCP / Listener.Close are pump-side calls); each listener's
	// backlog has its own lock for the cross-shard accept hand-off.
	listeners map[uint16]*TCPListener

	// UDP sockets (udp.go). The map itself changes only at quiescence;
	// each socket's queue has its own lock (flows from different remotes
	// hash to different shards but share one bound port).
	udpSocks map[uint16]*UDPSock

	// policy maps frames to shards (Options.Dispatch, defaulted to
	// dispatch.Static). Its Key/Shard run on the hot path; Rebalance
	// runs from dispatchTick with the workers quiescent.
	policy dispatch.Policy

	// Dispatch-rebalancing bookkeeping, pump-side only (dispatch.go):
	// prevShardLoad holds each shard's absolute Processed count at the
	// last dispatchTick, so the policy sees per-window deltas; the
	// counters feed DispatchStats.
	prevShardLoad []int64
	rebalances    int64
	bucketMoves   int64
	flowsMigrated int64
	fragsMigrated int64

	// tel is the host's telemetry domain: one flight-recorder tracer
	// per receive shard (wired into the LDLP engine), one pump-side
	// tracer (telPump) for events that happen outside the receive
	// schedule — transmit flushes, retransmissions, fault verdicts,
	// intake overflow — and the shared histograms. Always non-nil.
	tel     *telemetry.Domain
	telPump *telemetry.Tracer
	txBatch *telemetry.Hist
}

// transportShard owns the transport state of every flow whose 4-tuple
// hash maps to one receive shard: the engine routes a connection's
// segments to exactly this shard's worker, so the worker reads and
// writes these fields with no lock at all. The pump goroutine may touch
// them too, but only while the workers are quiescent (after Drain):
// timers, public socket calls and flushes are declared hand-off points.
// A single-threaded host has exactly one transportShard and the pump is
// the only toucher.
type transportShard struct {
	h   *Host
	idx int

	// pool is this shard's private mbuf allocation domain: segments,
	// fragments and reassembled datagrams built on behalf of this shard's
	// flows come from here, so shard workers never meet on an allocator
	// lock. Aliases Host.txPool on shard 0 / single-threaded hosts.
	pool *mbuf.PoolShard

	// txq is transmit-side LDLP batching: frames generated while
	// processing on this shard, flushed to the wire by the pump after
	// Drain (shard-index order keeps the flush deterministic).
	txq []frame

	// TCP state (tcp.go): this shard's connections in an open-addressed
	// flow table, fronted by the N-entry recently-active flow cache —
	// the paper's single-entry PCB cache generalized per DEC-TR-592
	// (per-shard, so the cached lines stay core-local and two flows on
	// different shards cannot evict each other).
	pcbs     *flowtable.Table[fourTuple, *tcpPCB]
	pcbCache *flowtable.Cache[fourTuple, *tcpPCB]

	// Reassembly state (frag.go): fragments hash by IP ID, so every
	// fragment of one datagram lands here. fragq remembers insertion
	// order (oldest first) so the maxFragStates eviction is O(1) — all
	// partial datagrams share one timeout, so insertion order is
	// deadline order.
	frags *flowtable.Table[fragKey, *fragState]
	fragq []fragQEntry

	// tally points at this shard's slot in the host's padded tally
	// array. Plain fields, written only by the owning worker (or the
	// pump at quiescence) and read through Host.ShardTransportStats —
	// the single-writer analogue of the atomic-counter discipline the
	// global Counters use.
	tally *shardTally
}

// shardTally is one transport shard's hot counters, padded to exactly
// one 64-byte cache line so adjacent shards' counter updates never
// false-share a line (each shard's worker bumps these on every frame;
// before the padding, shard i's tcpSegs and shard i+1's txFrames could
// land on one line and ping-pong between cores).
type shardTally struct {
	tcpSegs    int64
	udpDgrams  int64
	txFrames   int64
	reinjects  int64
	reasmLocal int64
	_          [24]byte
}

// ShardTransportStats is one transport shard's view for telemetry and
// tests: what it carried and what it currently owns. Read while the
// network is quiescent.
type ShardTransportStats struct {
	Shard     int
	TCPSegs   int64 // TCP segments that reached this shard's TCP layer
	UDPDgrams int64 // datagrams queued to sockets by this shard
	TxFrames   int64 // frames this shard queued for transmit
	Reinjects  int64 // reassembled datagrams re-routed to their flow's owner
	ReasmLocal int64 // reassembled datagrams whose flow this shard already owned
	PCBs       int   // connections currently owned
	Frags      int   // partial reassemblies currently held
}

// ShardTransportStats reports every transport shard's tallies, index-
// aligned with the receive shards. Pump-side: call while the network is
// quiescent.
//
//ldlp:quiescent
func (h *Host) ShardTransportStats() []ShardTransportStats {
	out := make([]ShardTransportStats, len(h.tshards))
	for i, ts := range h.tshards {
		out[i] = ShardTransportStats{
			Shard: i, TCPSegs: ts.tally.tcpSegs, UDPDgrams: ts.tally.udpDgrams,
			TxFrames: ts.tally.txFrames, Reinjects: ts.tally.reinjects,
			ReasmLocal: ts.tally.reasmLocal,
			PCBs:       ts.pcbs.Len(), Frags: ts.fragsLen(),
		}
	}
	return out
}

// FlowStats aggregates the flow-table and flow-cache effectiveness
// counters across every transport shard: cache hit rate per the
// configured eviction policy, and the flow table's probe-depth
// distribution (groups touched per lookup — p99 near 1 means lookups
// stay within one or two cache lines even at millions of flows).
// Pump-side: call while the network is quiescent.
type FlowStats struct {
	Policy         string  `json:"policy"`
	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	CacheEvictions int64   `json:"cacheEvictions"`
	CacheHitRate   float64 `json:"cacheHitRate"`
	TableLookups   int64   `json:"tableLookups"`
	TableHits      int64   `json:"tableHits"`
	PCBs           int     `json:"pcbs"`
	Capacity       int     `json:"capacity"`
	ProbeDepthP50  float64 `json:"probeDepthP50"`
	ProbeDepthP99  float64 `json:"probeDepthP99"`
	ProbeDepthMax  int64   `json:"probeDepthMax"`
	// Migrated counts connections re-homed to another shard by the
	// dispatch policy's rebalancing (0 under static policies).
	Migrated int64 `json:"migrated"`
}

// FlowStats reports the merged flow-table/flow-cache statistics.
// Pump-at-quiescence: it reads every shard's single-writer stats.
//
//ldlp:quiescent
func (h *Host) FlowStats() FlowStats {
	var out FlowStats
	var depth telemetry.HistSnapshot
	var cs flowtable.CacheStats
	for _, ts := range h.tshards {
		c := ts.pcbCache.Stats()
		cs.Hits += c.Hits
		cs.Misses += c.Misses
		cs.Evictions += c.Evictions
		st := ts.pcbs.Stats()
		out.TableLookups += st.Lookups
		out.TableHits += st.Hits
		out.PCBs += st.Live
		out.Capacity += st.Capacity
		depth.Merge(ts.pcbs.DepthHist())
	}
	out.Policy = h.opts.FlowCachePolicy.String()
	out.CacheHits, out.CacheMisses, out.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	out.CacheHitRate = cs.HitRate()
	out.ProbeDepthP50 = depth.Quantile(0.50)
	out.ProbeDepthP99 = depth.Quantile(0.99)
	out.ProbeDepthMax = depth.Max
	out.Migrated = h.flowsMigrated
	return out
}

// pumpShard returns the transport shard pump-originated output (UDP
// sends, pings) goes through. Any shard would be correct — the pump only
// runs these between pumps, when every shard is quiescent — shard 0 is
// simply the conventional home for flow-less traffic.
func (h *Host) pumpShard() *transportShard { return h.tshards[0] }

// rxPath is one receive pipeline's layers: device -> ether -> ip ->
// {tcp,udp,icmp} -> socket. The single-threaded engine has one; the
// sharded engine builds one per shard (layer handlers must emit into
// their own shard's queues).
type rxPath struct {
	h *Host
	// ts is the transport shard this pipeline owns: the engine's flow
	// hash routed every packet seen here to this shard, so handlers
	// touch ts state lock-free.
	ts *transportShard
	// tel is this pipeline's shard tracer (drop events on the error
	// paths; the LDLP engine records batch and layer events through the
	// same ring). Nil-safe.
	tel *telemetry.Tracer
	// pool aliases ts.pool: the pipeline's private mbuf shard for
	// pull-ups and reassembled datagrams.
	pool *mbuf.PoolShard
	// fq batches frees of frames other shards' pools own (set only on
	// sharded hosts); flushed by the pump at quiescence. Single-threaded
	// hosts free directly — same goroutine, nothing to batch.
	fq     *mbuf.FreeQueue
	device *core.Layer[*Packet]
	ether  *core.Layer[*Packet]
	ipin   *core.Layer[*Packet]
	tcpin  *core.Layer[*Packet]
	udpin  *core.Layer[*Packet]
	icmpin *core.Layer[*Packet]
	sock   *core.Layer[*Packet]
}

// buildRxPath wires the receive-path layers into stack s.
func (h *Host) buildRxPath(s *core.Stack[*Packet]) *rxPath {
	rx := &rxPath{h: h}
	rx.device = s.AddLayer("device", rx.deviceInput)
	rx.ether = s.AddLayer("ether", rx.etherInput)
	rx.ipin = s.AddLayer("ip", rx.ipInput)
	rx.tcpin = s.AddLayer("tcp", rx.tcpInput)
	rx.udpin = s.AddLayer("udp", rx.udpInput)
	rx.icmpin = s.AddLayer("icmp", rx.icmpInput)
	rx.sock = s.AddLayer("socket", rx.sockInput)
	s.Link(rx.device, rx.ether)
	s.Link(rx.ether, rx.ipin)
	s.Link(rx.ipin, rx.tcpin)
	s.Link(rx.ipin, rx.udpin)
	s.Link(rx.ipin, rx.icmpin)
	s.Link(rx.tcpin, rx.sock)
	s.Link(rx.udpin, rx.sock)
	s.Link(rx.icmpin, rx.sock)
	return rx
}

// hostSeq spreads hosts across the default mbuf pool's shards so two
// hosts' transmit paths do not share an allocator shard.
var hostSeq atomic.Int64

// newHost wires up the receive path and the transport shards.
func newHost(n *Net, name string, ip layers.IPAddr, opts Options) *Host {
	h := &Host{
		net: n, name: name, ip: ip, mac: MACFor(ip), opts: opts,
		listeners: make(map[uint16]*TCPListener),
		udpSocks:  make(map[uint16]*UDPSock),
		policy:    opts.Dispatch,
	}
	if h.policy == nil {
		h.policy = dispatch.Static{}
	}
	poolBase := int(hostSeq.Add(int64(maxInt(1, opts.RxShards) + 1)))
	h.id = poolBase
	h.txPool = mbuf.DefaultShard(poolBase)
	h.tshards = make([]*transportShard, maxInt(1, opts.RxShards))
	// One contiguous padded array: each shard's tally owns a full cache
	// line, and the slots are adjacent so the pump's stats sweep streams
	// through them.
	tallies := make([]shardTally, len(h.tshards))
	for i := range h.tshards {
		// Distinct hash seeds per shard keep the tables' probe sequences
		// independent; the seed feeds the key mix, not shard routing, so
		// it has no behavioural effect beyond slot placement.
		seed := uint64(poolBase)<<16 | uint64(i)
		h.tshards[i] = &transportShard{
			h: h, idx: i,
			pcbs:     flowtable.New[fourTuple, *tcpPCB](0, pcbHasher(seed)),
			pcbCache: flowtable.NewCache[fourTuple, *tcpPCB](opts.FlowCacheSize, opts.FlowCachePolicy, seed|1),
			tally:    &tallies[i],
		}
	}
	h.tshards[0].pool = h.txPool

	// Telemetry domain: per-shard flight recorders plus the pump tracer.
	// The default clock is the Net's simulated time in nanoseconds —
	// the pump advances n.now strictly before workers observe frames
	// (the channel send into a shard queue orders the write), so traces
	// stay deterministic per seed without a real clock anywhere.
	clock := opts.TelemetryClock
	if clock == nil {
		clock = func() int64 { return int64(n.now * 1e9) }
	}
	h.tel = telemetry.NewDomain(name, clock)
	h.telPump = h.tel.Tracer("pump", opts.TelemetryRing)
	h.telPump.RegisterLayer(0, "pump")
	h.txBatch = h.tel.Hist("tx-batch")
	rxBatch := h.tel.Hist("ldlp-batch")

	engineOpts := core.Options{
		Discipline: opts.Discipline,
		BatchLimit: opts.BatchLimit,
		MaxQueued:  opts.InputLimit,
		Shards:     opts.RxShards,
	}
	if opts.RxShards > 1 {
		if opts.Discipline != core.LDLP {
			panic("netstack: RxShards > 1 requires the LDLP discipline")
		}
		h.sharded = true
		h.prevShardLoad = make([]int64, opts.RxShards)
		h.shards = core.NewShardedStack(engineOpts,
			func(p *Packet) uint64 { return h.policy.Key(p.M.Bytes()) },
			func(i int, st *core.Stack[*Packet]) {
				rx := h.buildRxPath(st)
				rx.ts = h.tshards[i]
				rx.pool = mbuf.DefaultShard(poolBase + 1 + i)
				rx.ts.pool = rx.pool
				rx.fq = new(mbuf.FreeQueue)
				rx.tel = h.tel.Tracer("shard"+fmt.Sprint(i), opts.TelemetryRing)
				st.SetTelemetry(rx.tel, rxBatch)
				h.rxs = append(h.rxs, rx)
			})
		h.shards.SetRoute(h.policy.Shard)
		h.shards.SetSink(h.putPacket)
		return h
	}
	h.stack = core.NewStack[*Packet](engineOpts)
	h.rx = h.buildRxPath(h.stack)
	h.rx.ts = h.tshards[0]
	h.rx.pool = h.txPool
	h.rx.tel = h.tel.Tracer("shard0", opts.TelemetryRing)
	h.stack.SetTelemetry(h.rx.tel, rxBatch)
	h.stack.SetSink(h.putPacket)
	h.rxs = append(h.rxs, h.rx)
	return h
}

// getPacket takes a recycled Packet wrapper (or makes the pool's first).
//
//ldlp:hotpath
func (h *Host) getPacket() *Packet {
	if p, ok := h.pktPool.Get().(*Packet); ok {
		return p
	}
	//lint:ignore hotpathalloc pool-miss cold path: the recycle pool satisfies steady-state traffic
	return &Packet{}
}

// putPacket recycles a Packet whose mbuf chain has already been freed or
// handed off. It doubles as the stack sink: a packet reaching the top of
// the receive path is done. Safe from the merger goroutine (sync.Pool).
//
//ldlp:hotpath
func (h *Host) putPacket(p *Packet) {
	*p = Packet{}
	h.pktPool.Put(p)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// nextIPID allocates an outbound datagram ID. Atomic: shard workers and
// the pump send concurrently, and reassembly only needs IDs unique per
// (src, dst, proto) — interleaving across shards is harmless.
func (h *Host) nextIPID() uint16 { return uint16(h.ipID.Add(1)) }

// tupleShard maps a connection 4-tuple to its owning transport shard by
// asking the dispatch policy the same question the engine asks per
// frame: dispatch.TupleKey produces exactly the flow key an inbound
// segment of that connection yields under dispatch.FrameKey (pinned by
// TestTupleShardMatchesFrameKey), and policy.Shard maps it through the
// same routing (including LoadAware's indirection table). So the shard
// DialTCP picks is exactly the shard the engine routes the connection's
// segments to — the control plane and data plane share one key builder
// and one router, and cannot desynchronize.
func (h *Host) tupleShard(t fourTuple) *transportShard {
	if len(h.tshards) == 1 {
		return h.tshards[0]
	}
	key := dispatch.TupleKey(t.raddr, h.ip, layers.ProtoTCP, t.rport, t.lport)
	return h.tshards[h.policy.Shard(key, len(h.tshards))]
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// IP returns the host's address.
func (h *Host) IP() layers.IPAddr { return h.ip }

// StackStats exposes the LDLP engine counters (batch sizes, queue ops),
// aggregated across shards for a sharded host.
func (h *Host) StackStats() core.Stats {
	if h.sharded {
		return h.shards.Stats()
	}
	return h.stack.Stats()
}

// Telemetry exposes the host's flight-recorder domain: per-shard event
// traces plus the batch-size histograms. Snapshot it while the network
// is quiescent for exact results.
func (h *Host) Telemetry() *telemetry.Domain { return h.tel }

// RxShards reports the receive path's shard count (1 when single-
// threaded).
func (h *Host) RxShards() int {
	if h.sharded {
		return h.shards.NumShards()
	}
	return 1
}

// Close stops the shard workers and returns their batched frees to the
// pools. No-op for a single-threaded host; required to release
// goroutines for a sharded one.
func (h *Host) Close() {
	if h.sharded {
		h.shards.Close()
		for _, rx := range h.rxs {
			rx.fq.Flush()
		}
	}
}

// Now returns the network's simulated time, for protocol timers built on
// top of the stack.
func (h *Host) Now() float64 { return h.net.now }

// deliver receives a frame from the wire into the protocol stack, taking
// ownership of the mbuf chain. No copy: the sender's chain flows up this
// host's receive path and is freed (back to its owner's pool shard) when
// the path is done with it.
//
//ldlp:hotpath
func (h *Host) deliver(m *mbuf.Mbuf) {
	inc(&h.Counters.FramesIn)
	pkt := h.getPacket()
	pkt.M = m
	if h.sharded {
		if err := h.shards.Inject(pkt); err != nil {
			// A shard's input ring filled before its worker ran (the
			// in-memory wire delivers much faster than any NIC). The pump
			// backpressures — wait for the shards to drain, then retry —
			// rather than dropping, matching the single-threaded path
			// where processing keeps up with delivery by construction.
			h.shards.Drain()
			if err := h.shards.Inject(pkt); err != nil {
				h.telPump.Event(telemetry.EvDrop, 0, int64(telemetry.DropStackFull))
				pkt.M.FreeChain()
				h.putPacket(pkt)
			}
		}
		return
	}
	if err := h.stack.Inject(pkt); err != nil {
		h.telPump.Event(telemetry.EvDrop, 0, int64(telemetry.DropStackFull))
		pkt.M.FreeChain()
		h.putPacket(pkt)
	}
}

// InjectFrame delivers one frame from an external topology layer into
// this host's receive path, exactly as the built-in wire would: the host
// takes ownership of the mbuf chain. Under the conventional discipline
// the frame is processed inline; under LDLP it queues until the next
// Pump. Pump-side — the caller is the scheduler that owns the timeline.
//
//ldlp:quiescent
func (h *Host) InjectFrame(m *mbuf.Mbuf) { h.deliver(m) }

// Pump drains the receive engine and flushes the transmit queues — one
// scheduling quantum of this host, the per-host half of RunUntilIdle for
// topologies whose routing lives outside the Net (SetCarrier). Returns
// the number of packets processed plus frames flushed. Transmitted
// frames leave through the carrier during the call.
//
//ldlp:quiescent
func (h *Host) Pump() int { return h.process() }

// Tick fires this host's protocol timers (TCP retransmit/delayed-ACK,
// reassembly expiry, dispatch rebalance) against the Net clock. The
// built-in wire calls it from Net.Tick; carrier-backed schedulers call
// it directly for hosts whose timers they want to model.
//
//ldlp:quiescent
func (h *Host) TimerTick() { h.tick() }

// FrameFromBytes copies data into a fresh chain from the host's
// pump-side transmit pool. External topologies use it to materialize
// fault-injected duplicates of frames addressed to this host, the same
// pool choice impairFrame makes for the built-in wire. The caller owns
// the chain (typically handing it straight to InjectFrame).
//
//ldlp:quiescent
func (h *Host) FrameFromBytes(data []byte) *mbuf.Mbuf { return h.txPool.FromBytes(data) }

// process drains the receive engine (no-op under conventional, where
// Inject already ran the stack; a blocking Drain for the sharded engine),
// returns the shards' batched frees to their pools, and flushes the
// transmit queues.
func (h *Host) process() int {
	if h.sharded {
		before := h.shards.Stats().Processed
		h.shards.Drain()
		n := int(h.shards.Stats().Processed - before)
		for _, rx := range h.rxs {
			rx.fq.Flush()
		}
		return n + h.flushTx()
	}
	n := int(h.stack.Run())
	return n + h.flushTx()
}

// transmit hands a frame to the wire — immediately under conventional
// processing (single-threaded by construction), queued on this shard for
// a batched flush under LDLP.
func (ts *transportShard) transmit(f frame) {
	ts.tally.txFrames++
	if ts.h.opts.Discipline == core.LDLP {
		//lint:ignore hotpathalloc txq keeps its capacity across flushTx resets, so steady-state appends do not allocate
		ts.txq = append(ts.txq, f)
		return
	}
	ts.h.net.send(f)
}

// flushTx drains every shard's transmit queue in one batch, shard-index
// order (deterministic for a given shard count). Runs on the pump
// goroutine with the shard workers quiescent (after Drain).
//
//ldlp:quiescent
func (h *Host) flushTx() int {
	n := 0
	for _, ts := range h.tshards {
		n += len(ts.txq)
	}
	if n == 0 {
		return 0
	}
	if n > h.Counters.TxMaxBatch {
		h.Counters.TxMaxBatch = n
	}
	inc(&h.Counters.TxBatches)
	h.telPump.Event(telemetry.EvTxFlush, 0, int64(n))
	h.txBatch.Observe(int64(n))
	for _, ts := range h.tshards {
		for _, f := range ts.txq {
			h.net.send(f)
		}
		ts.txq = ts.txq[:0]
	}
	return n
}

// freeChain retires a chain this pipeline is done with. On a sharded
// host the chain's owner is usually another host's transmit shard, so
// the free goes through this pipeline's FreeQueue — batched, one owner
// lock per batch instead of per frame; single-threaded hosts free
// directly.
//
//ldlp:hotpath
func (rx *rxPath) freeChain(m *mbuf.Mbuf) {
	if rx.fq != nil {
		rx.fq.FreeChain(m)
		return
	}
	m.FreeChain()
}

// drop ends a packet's life mid-path: the chain returns to its owner's
// pool shard and the wrapper is recycled. Deliberately event-free: the
// TCP fast path retires every pure ACK through here, and per-frame
// telemetry there would tax exactly the path the paper measures.
//
//ldlp:hotpath
func (rx *rxPath) drop(p *Packet) {
	rx.freeChain(p.M)
	rx.h.putPacket(p)
}

// reject ends a packet's life on a protocol error path: flight-record
// the drop with its layer and reason, then free the packet. Callers
// bump their error counter via inc() themselves (the atomiccounter
// analyzer tracks those addresses; they must not escape through here).
// Error paths are rare by construction, so the event cost never shows
// on the fast path.
//
//ldlp:hotpath
func (rx *rxPath) reject(p *Packet, l *core.Layer[*Packet], reason telemetry.DropReason) {
	rx.tel.Event(telemetry.EvDrop, l.Index(), int64(reason))
	rx.drop(p)
}

// deviceInput models the driver layer: frame length sanity. Lock-free:
// touches only the packet and counters.
//
//ldlp:hotpath
func (rx *rxPath) deviceInput(p *Packet, emit core.Emit[*Packet]) {
	if p.M.PktLen() < layers.EthernetLen {
		inc(&rx.h.Counters.BadEther)
		rx.reject(p, rx.device, telemetry.DropBadEther)
		return
	}
	emit(rx.ether, p)
}

// etherInput decodes and strips the Ethernet header and demuxes on
// ethertype. Lock-free.
//
//ldlp:hotpath
func (rx *rxPath) etherInput(p *Packet, emit core.Emit[*Packet]) {
	h := rx.h
	buf := p.M.Bytes()
	n, err := p.Eth.Decode(buf)
	if err != nil {
		inc(&h.Counters.BadEther)
		rx.reject(p, rx.ether, telemetry.DropBadEther)
		return
	}
	if p.Eth.Dst != h.mac && p.Eth.Dst != (layers.MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) {
		inc(&h.Counters.BadEther)
		rx.reject(p, rx.ether, telemetry.DropBadEther)
		return
	}
	p.M.Adj(n)
	if p.Eth.EtherType != layers.EtherTypeIPv4 {
		inc(&h.Counters.BadEther)
		rx.reject(p, rx.ether, telemetry.DropBadEther)
		return
	}
	emit(rx.ipin, p)
}

// ipInput validates the IP header, trims padding, strips the header and
// demuxes on protocol. Header validation runs lock-free; the fragment
// slow path takes the host lock for the shared reassembly state.
//
//ldlp:hotpath
func (rx *rxPath) ipInput(p *Packet, emit core.Emit[*Packet]) {
	h := rx.h
	var err error
	p.M, err = p.M.Pullup(min(p.M.PktLen(), layers.IPv4MinLen))
	if err != nil {
		inc(&h.Counters.BadIP)
		rx.reject(p, rx.ipin, telemetry.DropBadIP)
		return
	}
	n, err := p.IP.Decode(p.M.Bytes())
	if err != nil {
		inc(&h.Counters.BadIP)
		rx.reject(p, rx.ipin, telemetry.DropBadIP)
		return
	}
	if p.IP.Dst != h.ip {
		inc(&h.Counters.BadIP)
		rx.reject(p, rx.ipin, telemetry.DropBadIP)
		return
	}
	if p.IP.TotalLen > p.M.PktLen() {
		inc(&h.Counters.BadIP)
		rx.reject(p, rx.ipin, telemetry.DropBadIP)
		return
	}
	// Trim link-layer padding beyond TotalLen, then strip the header.
	p.M.Adj(-(p.M.PktLen() - p.IP.TotalLen))
	p.M.Adj(n)
	if p.IP.IsFragment() {
		// The slow path the paper's traced fast path never sees: hold the
		// fragment until the datagram completes, then continue the demux
		// with the reassembled payload. Fragments hash by IP ID, so the
		// whole datagram reassembles on this shard lock-free — but the
		// completed datagram's flow may hash elsewhere, in which case it
		// is re-injected through the engine to its owning shard.
		inc(&h.Counters.Fragments)
		whole := rx.ts.reassemble(p)
		rx.freeChain(p.M)
		if whole == nil {
			rx.h.putPacket(p)
			return
		}
		if h.sharded && !rx.continueReassembled(p, whole) {
			return // handed off to the owning shard
		}
		if !h.sharded {
			// Single-threaded: the one shard owns every flow, so every
			// reassembled datagram continues inline.
			p.M = rx.pool.FromBytes(whole)
			rx.ts.tally.reasmLocal++
		}
		p.IP.TotalLen = layers.IPv4MinLen + len(whole)
		p.IP.Flags, p.IP.FragOff = 0, 0
	}
	switch p.IP.Protocol {
	case layers.ProtoTCP:
		emit(rx.tcpin, p)
	case layers.ProtoUDP:
		emit(rx.udpin, p)
	case layers.ProtoICMP:
		emit(rx.icmpin, p)
	default:
		inc(&h.Counters.BadIP)
		rx.reject(p, rx.ipin, telemetry.DropBadIP)
	}
}

// sockInput is the top of the receive path: the transport layers have
// already appended payload to the owning socket; this layer models the
// wakeup. The chain is freed here; the wrapper leaves the stack top and
// is recycled by the sink.
//
//ldlp:hotpath
func (rx *rxPath) sockInput(p *Packet, emit core.Emit[*Packet]) {
	rx.freeChain(p.M)
	p.M = nil
	emit(nil, p)
}

// continueReassembled routes a datagram completed on this shard:
// reassembly partitions by IP ID, transport by the dispatch policy's
// flow key, and the two can disagree. The datagram is rebuilt as a
// plain (non-fragment) frame and keyed through the policy exactly like
// a frame off the wire. When the flow belongs to this very shard — the
// common case whenever src/dst/proto alone pin both keys, and always
// possible since the policy is deterministic — the rebuilt chain
// continues up the pipeline inline: it keeps its arrival position
// relative to later same-flow segments, so same-shard reassembly is
// order-exact (this replaces the old behaviour of re-queuing even local
// datagrams at the tail, which reordered them behind segments that
// arrived later). The caller then proceeds with the demux; the return
// is true.
//
// When the flow's owner is another shard, the frame is re-injected
// through the engine — an explicit cross-shard hand-off through the
// same message-passing the wire uses, rather than a lock — tagged
// reinjected and counted (Counters.TCPReinjects for TCP: such a
// datagram queues behind frames its owner already accepted, so ACK
// ledgers may interleave differently; the equivalence harness keeps
// that path out of ledger-compared runs). Runs on the worker, so on
// overflow it must drop (only the pump may block on Drain); the
// bounded-intake drop matches the engine's drop-tail contract. Returns
// false; p was recycled.
func (rx *rxPath) continueReassembled(p *Packet, whole []byte) bool {
	h := rx.h
	ip := layers.IPv4{
		TotalLen: layers.IPv4MinLen + len(whole),
		ID:       p.IP.ID,
		TTL:      64,
		Protocol: p.IP.Protocol,
		Src:      p.IP.Src,
		Dst:      p.IP.Dst,
	}
	m := rx.pool.FromBytes(whole)
	m, hdr := m.Prepend(layers.IPv4MinLen)
	ip.Encode(hdr)
	eth := layers.Ethernet{Dst: h.mac, Src: MACFor(p.IP.Src), EtherType: layers.EtherTypeIPv4}
	m, hdr = m.Prepend(layers.EthernetLen)
	eth.Encode(hdr)
	key := h.policy.Key(m.Bytes())
	if h.policy.Shard(key, len(h.tshards)) == rx.ts.idx {
		// Ours: strip the headers we just rebuilt and continue the demux
		// inline, in this packet's original arrival position.
		m.Adj(layers.EthernetLen + layers.IPv4MinLen)
		p.M = m
		rx.ts.tally.reasmLocal++
		return true
	}
	rx.ts.tally.reinjects++
	if p.IP.Protocol == layers.ProtoTCP {
		inc(&h.Counters.TCPReinjects)
	}
	np := h.getPacket()
	np.M = m
	np.reinjected = true
	if err := h.shards.Inject(np); err != nil {
		rx.tel.Event(telemetry.EvDrop, rx.ipin.Index(), int64(telemetry.DropStackFull))
		np.M.FreeChain()
		h.putPacket(np)
	}
	h.putPacket(p)
	return false
}

// ipOutput wraps a transport segment in IP + Ethernet and transmits on
// this shard's queue, fragmenting datagrams that exceed the link MTU.
// Runs on the owning shard's worker, or on the pump at quiescence (the
// timer and public-socket hand-off points).
func (ts *transportShard) ipOutput(m *mbuf.Mbuf, proto byte, dst layers.IPAddr) {
	h := ts.h
	mtu := h.opts.mtu()
	if layers.IPv4MinLen+m.PktLen() > mtu {
		ts.fragmentOutput(m, proto, dst, mtu)
		return
	}
	ip := layers.IPv4{
		TotalLen: layers.IPv4MinLen + m.PktLen(),
		ID:       h.nextIPID(),
		TTL:      64,
		Protocol: proto,
		Src:      h.ip,
		Dst:      dst,
	}
	m, hdr := m.Prepend(layers.IPv4MinLen)
	ip.Encode(hdr)
	eth := layers.Ethernet{Dst: MACFor(dst), Src: h.mac, EtherType: layers.EtherTypeIPv4}
	m, hdr = m.Prepend(layers.EthernetLen)
	eth.Encode(hdr)
	inc(&h.Counters.FramesOut)
	// Hand the chain itself to the wire — no copy. Ownership transfers to
	// the receiving host's stack, which frees it when done.
	ts.transmit(frame{dst: eth.Dst, m: m})
}

// tick fires host timers (TCP retransmit / delayed ACK, reassembly
// expiry) and gives the dispatch policy its rebalance point. Runs on
// the pump goroutine with shard workers quiescent.
func (h *Host) tick() {
	h.tcpTick()
	h.fragTick()
	h.dispatchTick()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
