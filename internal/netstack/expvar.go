// Monitoring hooks: the pool and queue-depth counters a perf
// investigation wants next to a CPU or heap profile, exposed both as
// plain accessors and through the standard expvar registry (so any
// binary that serves net/http gets them on /debug/vars for free).
package netstack

import (
	"expvar"
	"sync"

	"ldlp/internal/mbuf"
)

// QueueDepths reports the receive engine's current input-queue depths:
// one entry per shard for a sharded host, a single entry (messages
// enqueued inside the engine) for a single-threaded one. A point-in-time
// snapshot for monitoring.
func (h *Host) QueueDepths() []int {
	if h.sharded {
		return h.shards.QueueDepths()
	}
	return []int{h.stack.Pending()}
}

// PoolStats returns the mbuf pool counters every host draws from (the
// package default pool): a balanced InUse of zero means no chain was
// leaked anywhere in the process.
func PoolStats() mbuf.Stats {
	return mbuf.PoolStats()
}

// expvarHosts maps a published name to the current *Host behind it, so
// tests (and long-lived servers that rebuild their Net) can re-publish a
// name: the expvar registry only ever holds one Func per name, and that
// Func reads the live host from here.
var (
	expvarMu    sync.Mutex
	expvarHosts = map[string]*Host{}
	expvarPool  sync.Once
)

// PublishExpvars registers this host's counters with the expvar registry
// as "netstack.<name>" (queue depths, frame and drop counters) and — once
// per process — the shared mbuf pool as "netstack.mbufpool". Calling it
// again with the same host name rebinds the name to the new host rather
// than panicking, so pumped-and-discarded Nets can keep publishing.
func (h *Host) PublishExpvars() {
	expvarPool.Do(func() {
		expvar.Publish("netstack.mbufpool", expvar.Func(func() any {
			s := mbuf.PoolStats()
			return map[string]int64{
				"allocs": s.Allocs, "frees": s.Frees,
				"inUse": s.InUse, "clusters": s.Clusters,
			}
		}))
	})
	name := "netstack." + h.name
	expvarMu.Lock()
	_, registered := expvarHosts[name]
	expvarHosts[name] = h
	expvarMu.Unlock()
	if registered {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		expvarMu.Lock()
		cur := expvarHosts[name]
		expvarMu.Unlock()
		return map[string]any{
			"queueDepths": cur.QueueDepths(),
			"framesIn":    cur.Counters.FramesIn,
			"framesOut":   cur.Counters.FramesOut,
			"tcpFastPath": cur.Counters.TCPFastPath,
			"tcpSlowPath": cur.Counters.TCPSlowPath,
			"stackStats":  cur.StackStats(),
		}
	}))
}
