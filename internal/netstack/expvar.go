// Monitoring hooks: the pool and queue-depth counters a perf
// investigation wants next to a CPU or heap profile, exposed both as
// plain accessors and through the standard expvar registry (so any
// binary that serves net/http gets them on /debug/vars for free).
package netstack

import (
	"expvar"
	"strconv"
	"sync"

	"ldlp/internal/mbuf"
	"ldlp/internal/telemetry"
)

// QueueDepths reports the receive engine's current input-queue depths:
// one entry per shard for a sharded host, a single entry (messages
// enqueued inside the engine) for a single-threaded one. A point-in-time
// snapshot for monitoring.
func (h *Host) QueueDepths() []int {
	if h.sharded {
		return h.shards.QueueDepths()
	}
	return []int{h.stack.Pending()}
}

// PoolStats returns the mbuf pool counters every host draws from (the
// package default pool): a balanced InUse of zero means no chain was
// leaked anywhere in the process.
func PoolStats() mbuf.Stats {
	return mbuf.PoolStats()
}

// expvarHosts maps a legacy alias name to the current *Host behind it,
// so tests (and long-lived servers that rebuild their Net) can
// re-publish a name: the expvar registry only ever holds one Func per
// name, and that Func reads the live host from here. Canonical
// per-instance names ("netstack.<name>.<id>") never collide and are
// published directly.
var (
	expvarMu    sync.Mutex
	expvarHosts = map[string]*Host{}
	expvarIDs   = map[int]bool{}
	expvarPool  sync.Once
)

// expvars builds the host's published variable map: queue depths, frame
// and drop counters, engine stats, and the telemetry histogram
// summaries (batch sizes, transmit flushes) from the host's domain.
func (h *Host) expvars() map[string]any {
	hists := map[string]telemetry.HistSummary{}
	snap := h.tel.Snapshot()
	for _, e := range snap.Hists {
		hists[e.Name] = e.Hist.Summary()
	}
	return map[string]any{
		"id":          h.id,
		"queueDepths": h.QueueDepths(),
		"framesIn":    h.Counters.FramesIn,
		"framesOut":   h.Counters.FramesOut,
		"tcpFastPath": h.Counters.TCPFastPath,
		"tcpSlowPath": h.Counters.TCPSlowPath,
		"stackStats":  h.StackStats(),
		"shards":      h.ShardTransportStats(),
		"flows":       h.FlowStats(),
		"dispatch":    h.DispatchStats(),
		"telemetry":   hists,
	}
}

// PublishExpvars registers this host's counters with the expvar
// registry and — once per process — the shared mbuf pool as
// "netstack.mbufpool".
//
// Two names are published per host. The canonical
// "netstack.<name>.<id>" is unique per host instance (the id comes
// from the process-wide host sequence), so two same-named hosts —
// e.g. a test building a fresh Net while the old one's vars are still
// registered — can never silently read each other's counters. The
// legacy "netstack.<name>" alias is kept for dashboards keyed by host
// name alone; re-publishing rebinds the alias to the newest host
// rather than panicking, so pumped-and-discarded Nets keep working.
func (h *Host) PublishExpvars() {
	expvarPool.Do(func() {
		expvar.Publish("netstack.mbufpool", expvar.Func(func() any {
			s := mbuf.PoolStats()
			return map[string]int64{
				"allocs": s.Allocs, "frees": s.Frees,
				"inUse": s.InUse, "clusters": s.Clusters,
				"heapAllocs": s.HeapAllocs,
			}
		}))
	})

	canonical := "netstack." + h.name + "." + strconv.Itoa(h.id)
	alias := "netstack." + h.name
	expvarMu.Lock()
	_, aliased := expvarHosts[alias]
	expvarHosts[alias] = h
	canonicalDone := expvarIDs[h.id]
	expvarIDs[h.id] = true
	expvarMu.Unlock()

	if !canonicalDone {
		expvar.Publish(canonical, expvar.Func(func() any {
			return h.expvars()
		}))
	}
	if aliased {
		return
	}
	expvar.Publish(alias, expvar.Func(func() any {
		expvarMu.Lock()
		cur := expvarHosts[alias]
		expvarMu.Unlock()
		return cur.expvars()
	}))
}
