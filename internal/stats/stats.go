// Package stats provides small streaming-statistics helpers used by the
// simulation and benchmark harnesses: running moments, histograms with
// percentile estimation, and formatted sweep tables.
//
// Everything here is deliberately allocation-light: the simulator records a
// sample per message and sweeps run hundreds of seconds of simulated time,
// so recorders are updated on the hot path.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming mean and variance using Welford's method.
// The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N reports the number of samples added.
func (r *Running) N() int64 { return r.n }

// Mean reports the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Min reports the smallest sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max reports the largest sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Var reports the unbiased sample variance, or 0 with fewer than two samples.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev reports the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Var()) }

// StderrMean reports the standard error of the mean.
func (r *Running) StderrMean() float64 {
	if r.n < 1 {
		return 0
	}
	return r.Stddev() / math.Sqrt(float64(r.n))
}

// CI95 reports the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (r *Running) CI95() float64 { return 1.96 * r.StderrMean() }

// Merge folds the samples summarized by other into r, as if every sample
// added to other had been added to r. Merging an empty recorder is a no-op.
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n := r.n + other.n
	d := other.mean - r.mean
	mean := r.mean + d*float64(other.n)/float64(n)
	m2 := r.m2 + other.m2 + d*d*float64(r.n)*float64(other.n)/float64(n)
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// Reset discards all samples.
func (r *Running) Reset() { *r = Running{} }

// Histogram is a fixed-bucket linear histogram over [Lo, Hi) with overflow
// and underflow buckets, supporting approximate quantiles. Construct with
// NewHistogram.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int64
	under   int64
	over    int64
	n       int64
	moments Running
}

// NewHistogram builds a histogram spanning [lo, hi) with nbuckets equal
// buckets. It panics if the range is empty or nbuckets < 1; both indicate
// a programming error at a call site with constant arguments.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if !(hi > lo) || nbuckets < 1 {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) x%d", lo, hi, nbuckets))
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		width:   (hi - lo) / float64(nbuckets),
		buckets: make([]int64, nbuckets),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.n++
	h.moments.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard the x == hi-epsilon float edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// N reports the total number of samples.
func (h *Histogram) N() int64 { return h.n }

// Mean reports the exact sample mean (tracked outside the buckets).
func (h *Histogram) Mean() float64 { return h.moments.Mean() }

// Max reports the exact largest sample.
func (h *Histogram) Max() float64 { return h.moments.Max() }

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) using
// linear interpolation within the containing bucket. Samples in the
// underflow bucket report lo; samples in the overflow bucket report the
// exact observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.moments.Min()
	}
	if q >= 1 {
		return h.moments.Max()
	}
	rank := q * float64(h.n)
	cum := float64(h.under)
	if rank <= cum {
		return h.lo
	}
	for i, c := range h.buckets {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			frac := (rank - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.moments.Max()
}

// Merge folds other's samples into h. Both histograms must have identical
// bucket geometry; Merge panics otherwise (a programming error).
func (h *Histogram) Merge(other *Histogram) {
	if h.lo != other.lo || h.hi != other.hi || len(h.buckets) != len(other.buckets) {
		panic("stats: merging histograms with different geometry")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.under += other.under
	h.over += other.over
	h.n += other.n
	h.moments.Merge(&other.moments)
}

// Point is one row of a parameter sweep: an x value and a set of named
// y series values.
type Point struct {
	X float64
	Y map[string]float64
}

// Table accumulates sweep results and renders them as an aligned
// tab-separated table, one row per x value, matching the series the paper's
// figures plot.
type Table struct {
	Name   string
	XLabel string
	Series []string // column order
	Points []Point
}

// NewTable creates a sweep table with the given column order.
func NewTable(name, xlabel string, series ...string) *Table {
	return &Table{Name: name, XLabel: xlabel, Series: series}
}

// Add appends one row. The ys must be given in Series order.
func (t *Table) Add(x float64, ys ...float64) {
	if len(ys) != len(t.Series) {
		panic(fmt.Sprintf("stats: table %q expects %d series, got %d", t.Name, len(t.Series), len(ys)))
	}
	m := make(map[string]float64, len(ys))
	for i, y := range ys {
		m[t.Series[i]] = y
	}
	t.Points = append(t.Points, Point{X: x, Y: m})
}

// String renders the table with a header line, sorted by x.
func (t *Table) String() string {
	pts := make([]Point, len(t.Points))
	copy(pts, t.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	s := "# " + t.Name + "\n" + t.XLabel
	for _, name := range t.Series {
		s += "\t" + name
	}
	s += "\n"
	for _, p := range pts {
		s += formatFloat(p.X)
		for _, name := range t.Series {
			s += "\t" + formatFloat(p.Y[name])
		}
		s += "\n"
	}
	return s
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.6g", v)
}
