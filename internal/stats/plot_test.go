package stats

import (
	"strings"
	"testing"
)

func samplePlotTable() *Table {
	t := NewTable("latency vs rate", "rate", "conv", "ldlp")
	t.Add(1000, 300e-6, 310e-6)
	t.Add(4000, 60e-3, 500e-6)
	t.Add(8000, 120e-3, 1.2e-3)
	return t
}

func TestPlotContainsStructure(t *testing.T) {
	s := samplePlotTable().Plot(PlotOptions{Width: 40, Height: 10, LogY: true, YLabel: "seconds"})
	if !strings.Contains(s, "# latency vs rate") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "*=conv") || !strings.Contains(s, "o=ldlp") {
		t.Errorf("missing legend:\n%s", s)
	}
	if !strings.Contains(s, "(rate)") {
		t.Error("missing x label")
	}
	if !strings.Contains(s, "log scale") {
		t.Error("missing log marker")
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Error("missing data glyphs")
	}
	// Plot area height: 10 grid lines between the title and the axis.
	lines := strings.Split(s, "\n")
	gridLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines++
		}
	}
	if gridLines != 10 {
		t.Errorf("grid lines = %d, want 10", gridLines)
	}
}

func TestPlotOrdersSeriesVertically(t *testing.T) {
	// At high x, conv latency >> ldlp latency: the '*' must appear above
	// (earlier row than) the 'o' in the rightmost columns.
	s := samplePlotTable().Plot(PlotOptions{Width: 30, Height: 12, LogY: true})
	lines := strings.Split(s, "\n")
	starRow, oRow := -1, -1
	for i, l := range lines {
		bar := strings.IndexByte(l, '|')
		if bar < 0 {
			continue
		}
		right := l[bar+len(l[bar:])/2:] // right half of the plot area
		if strings.Contains(right, "*") && starRow == -1 {
			starRow = i
		}
		if strings.Contains(right, "o") && oRow == -1 {
			oRow = i
		}
	}
	if starRow == -1 || oRow == -1 {
		t.Fatalf("glyphs not found:\n%s", s)
	}
	if !(starRow < oRow) {
		t.Errorf("conv (*, row %d) should plot above ldlp (o, row %d):\n%s", starRow, oRow, s)
	}
}

func TestPlotEmptyTable(t *testing.T) {
	s := NewTable("empty", "x", "y").Plot(PlotOptions{})
	if !strings.Contains(s, "no data") {
		t.Errorf("empty table rendering: %q", s)
	}
}

func TestPlotLinearAndDegenerate(t *testing.T) {
	tab := NewTable("flat", "x", "y")
	tab.Add(1, 5)
	tab.Add(2, 5) // zero y-range: must not divide by zero
	s := tab.Plot(PlotOptions{Width: 20, Height: 5})
	if !strings.Contains(s, "*") {
		t.Errorf("flat series not plotted:\n%s", s)
	}
	// Single point, zero x-range.
	tab2 := NewTable("point", "x", "y")
	tab2.Add(3, 7)
	if s2 := tab2.Plot(PlotOptions{}); !strings.Contains(s2, "*") {
		t.Errorf("single point not plotted:\n%s", s2)
	}
}

func TestPlotLogSkipsNonPositive(t *testing.T) {
	tab := NewTable("withzero", "x", "y")
	tab.Add(1, 0) // cannot be plotted on a log axis
	tab.Add(2, 10)
	s := tab.Plot(PlotOptions{LogY: true, Width: 20, Height: 5})
	inGrid := 0
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, "|") {
			inGrid += strings.Count(l, "*")
		}
	}
	if inGrid != 1 {
		t.Errorf("log plot should skip the zero point (plotted %d):\n%s", inGrid, s)
	}
}
