package stats

import (
	"fmt"
	"math"
	"strings"
)

// PlotOptions controls ASCII rendering of a Table.
type PlotOptions struct {
	// Width/Height are the plot area dimensions in characters; zero
	// selects 64×20.
	Width, Height int
	// LogY plots log10(y) — the paper's latency figures use log axes.
	LogY bool
	// YLabel annotates the vertical axis.
	YLabel string
}

// seriesGlyphs mark successive series in a plot.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Plot renders the table as an ASCII chart, one glyph per series, with a
// legend — a terminal rendition of the paper's figures.
func (t *Table) Plot(opts PlotOptions) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	if len(t.Points) == 0 {
		return "# " + t.Name + " (no data)\n"
	}

	// Collect x range and y range over all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	yval := func(v float64) (float64, bool) {
		if opts.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	for _, p := range t.Points {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		for _, name := range t.Series {
			v, ok := yval(p.Y[name])
			if !ok {
				continue
			}
			if v < minY {
				minY = v
			}
			if v > maxY {
				maxY = v
			}
		}
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, name := range t.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range t.Points {
			v, ok := yval(p.Y[name])
			if !ok {
				continue
			}
			col := int((p.X - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((v-minY)/(maxY-minY)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = glyph
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Name)
	yfmt := func(v float64) string {
		if opts.LogY {
			return fmt.Sprintf("%9.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", 9)
		switch i {
		case 0:
			label = yfmt(maxY)
		case h - 1:
			label = yfmt(minY)
		case h / 2:
			label = yfmt((minY + maxY) / 2)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s %s\n", strings.Repeat(" ", 9), strings.Repeat("-", w+2))
	fmt.Fprintf(&b, "%s  %-10.4g%s%10.4g  (%s)\n",
		strings.Repeat(" ", 9), minX, strings.Repeat(" ", maxInt(0, w-20)), maxX, t.XLabel)
	var legend []string
	for si, name := range t.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], name))
	}
	fmt.Fprintf(&b, "%s  %s", strings.Repeat(" ", 9), strings.Join(legend, "  "))
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "  [y: %s", opts.YLabel)
		if opts.LogY {
			b.WriteString(", log scale")
		}
		b.WriteString("]")
	} else if opts.LogY {
		b.WriteString("  [log y]")
	}
	b.WriteString("\n")
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
