package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Add(x)
	}
	if r.N() != 5 {
		t.Fatalf("N = %d, want 5", r.N())
	}
	if r.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", r.Mean())
	}
	if r.Var() != 2.5 {
		t.Errorf("Var = %v, want 2.5", r.Var())
	}
	if r.Min() != 1 || r.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Stddev() != 0 || r.CI95() != 0 {
		t.Errorf("empty Running should report zeros, got mean=%v var=%v", r.Mean(), r.Var())
	}
}

func TestRunningSingleSampleVariance(t *testing.T) {
	var r Running
	r.Add(42)
	if r.Var() != 0 {
		t.Errorf("Var with one sample = %v, want 0", r.Var())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var whole, left, right Running
		for _, x := range a {
			clean := math.Mod(x, 1e6)
			if math.IsNaN(clean) {
				clean = 0
			}
			whole.Add(clean)
			left.Add(clean)
		}
		for _, x := range b {
			clean := math.Mod(x, 1e6)
			if math.IsNaN(clean) {
				clean = 0
			}
			whole.Add(clean)
			right.Add(clean)
		}
		left.Merge(&right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return almostEqual(whole.Mean(), left.Mean(), 1e-9) &&
			almostEqual(whole.Var(), left.Var(), 1e-9) &&
			whole.Min() == left.Min() && whole.Max() == left.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b) // empty rhs: no-op
	if a != before {
		t.Errorf("merge of empty changed recorder: %+v -> %+v", before, a)
	}
	b.Merge(&a) // empty lhs: copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Errorf("merge into empty: mean=%v n=%d", b.Mean(), b.N())
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(5)
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 {
		t.Errorf("after reset: n=%d mean=%v", r.N(), r.Mean())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 50, 2},
		{0.9, 90, 2},
		{0.99, 99, 2},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if h.Quantile(0) != 0 {
		t.Errorf("Quantile(0) = %v, want exact min 0", h.Quantile(0))
	}
	if h.Quantile(1) != 99 {
		t.Errorf("Quantile(1) = %v, want exact max 99", h.Quantile(1))
	}
}

func TestHistogramOverflowUnderflow(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(100)
	h.Add(5)
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3", h.N())
	}
	// Max must be exact even though 100 landed in the overflow bucket.
	if h.Max() != 100 {
		t.Errorf("Max = %v, want 100", h.Max())
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %v, want 100", q)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	// Mean should not be quantized to bucket width.
	h.Add(0.1)
	h.Add(0.2)
	if !almostEqual(h.Mean(), 0.15, 1e-12) {
		t.Errorf("Mean = %v, want 0.15", h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		a.Add(rand.Float64() * 10)
		b.Add(rand.Float64() * 10)
	}
	n := a.N() + b.N()
	a.Merge(b)
	if a.N() != n {
		t.Errorf("merged N = %d, want %d", a.N(), n)
	}
}

func TestHistogramMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched histograms should panic")
		}
	}()
	NewHistogram(0, 10, 10).Merge(NewHistogram(0, 20, 10))
}

func TestHistogramInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(5,5,...) should panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

// Property: for samples inside [lo,hi), quantile estimates are monotone in q
// and bounded by the data range.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(0, 1, 32)
		for i := 0; i < 200; i++ {
			h.Add(rng.Float64())
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("latency", "rate", "conv", "ldlp")
	tab.Add(2000, 1.5, 1.25)
	tab.Add(1000, 2, 1)
	s := tab.String()
	if !strings.Contains(s, "# latency") {
		t.Errorf("missing title: %q", s)
	}
	if !strings.Contains(s, "rate\tconv\tldlp") {
		t.Errorf("missing header: %q", s)
	}
	// Rows must come out sorted by x.
	i1 := strings.Index(s, "1000")
	i2 := strings.Index(s, "2000")
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Errorf("rows not sorted by x: %q", s)
	}
}

func TestTableArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong series arity should panic")
		}
	}()
	NewTable("t", "x", "a", "b").Add(1, 2)
}
