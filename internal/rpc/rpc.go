// Package rpc implements a compact Sun-RPC-style request/reply protocol
// over the netstack's UDP, plus an NFS-lite file service on top of it.
// The paper's §1 lists NFS among its motivating small-message protocols:
// "all except two messages in NFS" are signalling-sized, and an NFS
// server's working set (RPC dispatch + XDR-ish decode + file service +
// UDP/IP/driver below it) is exactly the kind of multi-layer code footprint
// LDLP batches for.
//
// The subset: 32-bit XID matching, call/reply discrimination, program/
// procedure dispatch, accept-status errors, client retry on a timer and —
// the classic mechanism — a server-side duplicate-request cache so
// retransmitted non-idempotent calls (NFS WRITE) are answered from the
// cache instead of re-executed.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ldlp/internal/layers"
	"ldlp/internal/netstack"
)

// Message types.
const (
	msgCall  = 0
	msgReply = 1
)

// Accept status values (after RFC 5531's accept_stat).
const (
	StatusOK          = 0
	StatusProgUnavail = 1
	StatusProcUnavail = 2
	StatusGarbageArgs = 3
	StatusSystemErr   = 5
)

// Header layout: xid(4) type(4) prog(4) proc(4) status(4) payload...
const headerLen = 20

// Errors.
var (
	ErrTruncated = errors.New("rpc: truncated message")
	ErrNotReply  = errors.New("rpc: not a reply")
)

type message struct {
	xid     uint32
	typ     uint32
	prog    uint32
	proc    uint32
	status  uint32
	payload []byte
}

func (m *message) encode() []byte {
	b := make([]byte, headerLen+len(m.payload))
	be := binary.BigEndian
	be.PutUint32(b[0:4], m.xid)
	be.PutUint32(b[4:8], m.typ)
	be.PutUint32(b[8:12], m.prog)
	be.PutUint32(b[12:16], m.proc)
	be.PutUint32(b[16:20], m.status)
	copy(b[headerLen:], m.payload)
	return b
}

func decodeMessage(b []byte) (*message, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("%w (%d bytes)", ErrTruncated, len(b))
	}
	be := binary.BigEndian
	m := &message{
		xid:    be.Uint32(b[0:4]),
		typ:    be.Uint32(b[4:8]),
		prog:   be.Uint32(b[8:12]),
		proc:   be.Uint32(b[12:16]),
		status: be.Uint32(b[16:20]),
	}
	if m.typ != msgCall && m.typ != msgReply {
		return nil, fmt.Errorf("rpc: bad message type %d", m.typ)
	}
	m.payload = append([]byte(nil), b[headerLen:]...)
	return m, nil
}

// Handler executes one procedure: decode args from the payload, return
// the reply payload (or an error, which maps to StatusSystemErr).
type Handler func(args []byte) ([]byte, error)

type procKey struct {
	prog, proc uint32
}

// dupKey identifies a client request for the duplicate-request cache.
type dupKey struct {
	client layers.IPAddr
	port   uint16
	xid    uint32
}

// Server dispatches calls to registered procedures.
type Server struct {
	sock  *netstack.UDPSock
	procs map[procKey]Handler

	// Duplicate-request cache: retransmitted calls are answered from
	// here, never re-executed — what makes retrying WRITE safe.
	dupCache map[dupKey][]byte
	dupOrder []dupKey
	// DupCacheSize bounds the cache (FIFO eviction).
	DupCacheSize int

	// Calls/Duplicates/Errors count server activity.
	Calls, Duplicates, Errors int64
}

// NewServer binds an RPC server to the host's port.
func NewServer(h *netstack.Host, port uint16) (*Server, error) {
	sock, err := h.UDPSocket(port)
	if err != nil {
		return nil, err
	}
	return &Server{
		sock:         sock,
		procs:        make(map[procKey]Handler),
		dupCache:     make(map[dupKey][]byte),
		DupCacheSize: 128,
	}, nil
}

// Register installs a procedure handler.
func (s *Server) Register(prog, proc uint32, h Handler) {
	s.procs[procKey{prog, proc}] = h
}

// Poll serves every pending call.
func (s *Server) Poll() {
	for {
		dg, ok := s.sock.Recv()
		if !ok {
			return
		}
		call, err := decodeMessage(dg.Data)
		if err != nil || call.typ != msgCall {
			s.Errors++
			continue
		}
		s.Calls++
		key := dupKey{client: dg.Src, port: dg.SrcPort, xid: call.xid}
		if cached, dup := s.dupCache[key]; dup {
			s.Duplicates++
			s.sock.SendTo(dg.Src, dg.SrcPort, cached)
			continue
		}
		reply := &message{xid: call.xid, typ: msgReply, prog: call.prog, proc: call.proc}
		if h, ok := s.procs[procKey{call.prog, call.proc}]; !ok {
			if s.hasProg(call.prog) {
				reply.status = StatusProcUnavail
			} else {
				reply.status = StatusProgUnavail
			}
		} else if out, err := h(call.payload); err != nil {
			if errors.Is(err, ErrGarbageArgs) {
				reply.status = StatusGarbageArgs
			} else {
				reply.status = StatusSystemErr
			}
		} else {
			reply.payload = out
		}
		wire := reply.encode()
		s.remember(key, wire)
		s.sock.SendTo(dg.Src, dg.SrcPort, wire)
	}
}

// ErrGarbageArgs is returned by handlers that cannot decode their args.
var ErrGarbageArgs = errors.New("rpc: garbage arguments")

func (s *Server) hasProg(prog uint32) bool {
	for k := range s.procs {
		if k.prog == prog {
			return true
		}
	}
	return false
}

func (s *Server) remember(key dupKey, wire []byte) {
	if _, exists := s.dupCache[key]; !exists {
		s.dupOrder = append(s.dupOrder, key)
		for len(s.dupOrder) > s.DupCacheSize {
			evict := s.dupOrder[0]
			s.dupOrder = s.dupOrder[1:]
			delete(s.dupCache, evict)
		}
	}
	s.dupCache[key] = wire
}

// Pending is one in-flight (or finished) call.
type Pending struct {
	// Done reports completion; then Status and Reply (or Err) are valid.
	Done   bool
	Status uint32
	Reply  []byte
	Err    error

	xid      uint32
	prog     uint32
	proc     uint32
	args     []byte
	deadline float64
	attempts int
}

// Client issues calls toward one server.
type Client struct {
	host   *netstack.Host
	sock   *netstack.UDPSock
	server layers.IPAddr
	port   uint16
	nextX  uint32

	pending map[uint32]*Pending

	// RetryInterval and MaxAttempts tune persistence; retransmissions
	// reuse the same XID, which is what exercises the server's duplicate
	// cache.
	RetryInterval float64
	MaxAttempts   int
	// Retries/Timeouts count recovery activity.
	Retries, Timeouts int64
}

// NewClient binds a client socket aimed at server:port.
func NewClient(h *netstack.Host, localPort uint16, server layers.IPAddr, port uint16) (*Client, error) {
	sock, err := h.UDPSocket(localPort)
	if err != nil {
		return nil, err
	}
	return &Client{
		host: h, sock: sock, server: server, port: port,
		pending:       make(map[uint32]*Pending),
		RetryInterval: 0.5,
		MaxAttempts:   3,
	}, nil
}

// Call starts one RPC; pump the network and Poll/Tick until Done.
func (c *Client) Call(prog, proc uint32, args []byte) *Pending {
	c.nextX++
	p := &Pending{xid: c.nextX, prog: prog, proc: proc, args: append([]byte(nil), args...)}
	c.pending[p.xid] = p
	c.transmit(p)
	return p
}

func (c *Client) transmit(p *Pending) {
	m := &message{xid: p.xid, typ: msgCall, prog: p.prog, proc: p.proc, payload: p.args}
	p.attempts++
	p.deadline = c.host.Now() + c.RetryInterval
	c.sock.SendTo(c.server, c.port, m.encode())
}

// Poll consumes replies.
func (c *Client) Poll() {
	for {
		dg, ok := c.sock.Recv()
		if !ok {
			return
		}
		m, err := decodeMessage(dg.Data)
		if err != nil || m.typ != msgReply {
			continue
		}
		p, ok := c.pending[m.xid]
		if !ok {
			continue // late reply after a retry already completed
		}
		delete(c.pending, m.xid)
		p.Done = true
		p.Status = m.status
		if m.status == StatusOK {
			p.Reply = m.payload
		} else {
			p.Err = fmt.Errorf("rpc: status %d", m.status)
		}
	}
}

// Tick retries overdue calls (same XID) and fails exhausted ones.
func (c *Client) Tick() {
	now := c.host.Now()
	for xid, p := range c.pending {
		if now < p.deadline {
			continue
		}
		if p.attempts >= c.MaxAttempts {
			p.Done = true
			p.Err = fmt.Errorf("rpc: xid %d timed out after %d attempts", p.xid, p.attempts)
			c.Timeouts++
			delete(c.pending, xid)
			continue
		}
		c.Retries++
		c.transmit(p)
	}
}

// Outstanding reports in-flight calls.
func (c *Client) Outstanding() int { return len(c.pending) }
