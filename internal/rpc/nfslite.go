package rpc

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// NFS-lite: a file service in the shape of NFSv2 over the RPC layer. The
// procedures below are the small-message ones the paper's aside is about
// (LOOKUP, GETATTR, and small READ/WRITE): requests of tens of bytes,
// replies of at most a few hundred.

// NFSProgram is the RPC program number (NFS's real one).
const NFSProgram = 100003

// Procedures.
const (
	ProcNull    = 0
	ProcGetAttr = 1
	ProcLookup  = 4
	ProcRead    = 6
	ProcWrite   = 8
)

// Attr is a file's attributes.
type Attr struct {
	Size  uint32
	Mtime uint32
}

// file is one stored file.
type file struct {
	data  []byte
	mtime uint32
}

// FileServer is an in-memory NFS-lite server: a flat namespace of files
// addressed by 32-bit handles.
type FileServer struct {
	files  map[string]uint32 // name -> handle
	byFH   map[uint32]*file
	names  map[uint32]string
	nextFH uint32
	clock  uint32

	// Reads/Writes/Lookups count procedure executions (NOT retransmitted
	// duplicates — the dup cache answers those without re-execution).
	Reads, Writes, Lookups int64
}

// NewFileServer creates an empty file store and registers its procedures
// on srv.
func NewFileServer(srv *Server) *FileServer {
	fs := &FileServer{
		files: make(map[string]uint32),
		byFH:  make(map[uint32]*file),
		names: make(map[uint32]string),
	}
	srv.Register(NFSProgram, ProcNull, func([]byte) ([]byte, error) { return nil, nil })
	srv.Register(NFSProgram, ProcLookup, fs.lookup)
	srv.Register(NFSProgram, ProcGetAttr, fs.getattr)
	srv.Register(NFSProgram, ProcRead, fs.read)
	srv.Register(NFSProgram, ProcWrite, fs.write)
	return fs
}

// Create adds a file with initial contents and returns its handle.
func (fs *FileServer) Create(name string, data []byte) uint32 {
	fs.nextFH++
	fs.clock++
	fs.files[name] = fs.nextFH
	fs.byFH[fs.nextFH] = &file{data: append([]byte(nil), data...), mtime: fs.clock}
	fs.names[fs.nextFH] = name
	return fs.nextFH
}

// Names lists stored files, sorted.
func (fs *FileServer) Names() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- argument/result codecs (length-prefixed, big-endian) ---

func putString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func getString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, ErrGarbageArgs
	}
	n := binary.BigEndian.Uint32(b)
	if int(n) > len(b)-4 || n > 255 {
		return "", nil, ErrGarbageArgs
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}

func (fs *FileServer) lookup(args []byte) ([]byte, error) {
	fs.Lookups++
	name, _, err := getString(args)
	if err != nil {
		return nil, err
	}
	fh, ok := fs.files[name]
	if !ok {
		return binary.BigEndian.AppendUint32(nil, 0), nil // 0 = no such file
	}
	return binary.BigEndian.AppendUint32(nil, fh), nil
}

func (fs *FileServer) getattr(args []byte) ([]byte, error) {
	if len(args) < 4 {
		return nil, ErrGarbageArgs
	}
	fh := binary.BigEndian.Uint32(args)
	f, ok := fs.byFH[fh]
	if !ok {
		return nil, fmt.Errorf("nfslite: stale handle %d", fh)
	}
	out := binary.BigEndian.AppendUint32(nil, uint32(len(f.data)))
	return binary.BigEndian.AppendUint32(out, f.mtime), nil
}

func (fs *FileServer) read(args []byte) ([]byte, error) {
	fs.Reads++
	if len(args) < 12 {
		return nil, ErrGarbageArgs
	}
	fh := binary.BigEndian.Uint32(args[0:4])
	off := binary.BigEndian.Uint32(args[4:8])
	count := binary.BigEndian.Uint32(args[8:12])
	f, ok := fs.byFH[fh]
	if !ok {
		return nil, fmt.Errorf("nfslite: stale handle %d", fh)
	}
	if count > 8192 {
		count = 8192
	}
	if int(off) >= len(f.data) {
		return nil, nil
	}
	end := int(off) + int(count)
	if end > len(f.data) {
		end = len(f.data)
	}
	return append([]byte(nil), f.data[off:end]...), nil
}

// write appends-or-overwrites at an offset. It is NOT idempotent when
// extending a file, which is exactly why the RPC layer's duplicate-
// request cache matters: a retransmitted WRITE must not apply twice.
func (fs *FileServer) write(args []byte) ([]byte, error) {
	fs.Writes++
	if len(args) < 8 {
		return nil, ErrGarbageArgs
	}
	fh := binary.BigEndian.Uint32(args[0:4])
	off := binary.BigEndian.Uint32(args[4:8])
	data := args[8:]
	f, ok := fs.byFH[fh]
	if !ok {
		return nil, fmt.Errorf("nfslite: stale handle %d", fh)
	}
	end := int(off) + len(data)
	if end > len(f.data) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], data)
	fs.clock++
	f.mtime = fs.clock
	return binary.BigEndian.AppendUint32(nil, uint32(len(data))), nil
}

// --- client-side convenience wrappers ---

// LookupArgs encodes a LOOKUP request.
func LookupArgs(name string) []byte { return putString(nil, name) }

// LookupReply decodes a LOOKUP reply (0 means not found).
func LookupReply(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, ErrTruncated
	}
	return binary.BigEndian.Uint32(b), nil
}

// GetAttrArgs encodes a GETATTR request.
func GetAttrArgs(fh uint32) []byte { return binary.BigEndian.AppendUint32(nil, fh) }

// GetAttrReply decodes a GETATTR reply.
func GetAttrReply(b []byte) (Attr, error) {
	if len(b) < 8 {
		return Attr{}, ErrTruncated
	}
	return Attr{
		Size:  binary.BigEndian.Uint32(b[0:4]),
		Mtime: binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// ReadArgs encodes a READ request.
func ReadArgs(fh, off, count uint32) []byte {
	b := binary.BigEndian.AppendUint32(nil, fh)
	b = binary.BigEndian.AppendUint32(b, off)
	return binary.BigEndian.AppendUint32(b, count)
}

// WriteArgs encodes a WRITE request.
func WriteArgs(fh, off uint32, data []byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, fh)
	b = binary.BigEndian.AppendUint32(b, off)
	return append(b, data...)
}

// WriteReply decodes a WRITE reply (bytes written).
func WriteReply(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, ErrTruncated
	}
	return binary.BigEndian.Uint32(b), nil
}
