package rpc

import (
	"bytes"
	"testing"
	"testing/quick"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
)

var (
	ipSrv = layers.IPAddr{10, 7, 1, 1}
	ipCli = layers.IPAddr{10, 7, 1, 2}
)

const rpcPort = 2049

func deploy(t *testing.T, d core.Discipline) (*netstack.Net, *Server, *FileServer, *Client) {
	t.Helper()
	mbuf.ResetPool()
	n := netstack.NewNet()
	hs := n.AddHost("srv", ipSrv, netstack.DefaultOptions(d))
	hc := n.AddHost("cli", ipCli, netstack.DefaultOptions(d))
	srv, err := NewServer(hs, rpcPort)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFileServer(srv)
	cli, err := NewClient(hc, 900, ipSrv, rpcPort)
	if err != nil {
		t.Fatal(err)
	}
	return n, srv, fs, cli
}

func pump(n *netstack.Net, srv *Server, cli *Client) {
	for i := 0; i < 10; i++ {
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		cli.Poll()
		if cli.Outstanding() == 0 {
			return
		}
	}
}

func call(t *testing.T, n *netstack.Net, srv *Server, cli *Client, prog, proc uint32, args []byte) *Pending {
	t.Helper()
	p := cli.Call(prog, proc, args)
	pump(n, srv, cli)
	if !p.Done {
		t.Fatalf("call %d/%d never completed", prog, proc)
	}
	return p
}

func TestMessageCodecRoundTrip(t *testing.T) {
	f := func(xid, prog, proc, status uint32, payload []byte) bool {
		m := &message{xid: xid, typ: msgCall, prog: prog, proc: proc, status: status, payload: payload}
		got, err := decodeMessage(m.encode())
		return err == nil && got.xid == xid && got.prog == prog &&
			got.proc == proc && got.status == status && bytes.Equal(got.payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMessageCodecRejectsGarbage(t *testing.T) {
	if _, err := decodeMessage([]byte{1, 2, 3}); err == nil {
		t.Error("short message accepted")
	}
	bad := (&message{typ: 9}).encode()
	if _, err := decodeMessage(bad); err == nil {
		t.Error("bad type accepted")
	}
}

func TestNullProc(t *testing.T) {
	n, srv, _, cli := deploy(t, core.Conventional)
	p := call(t, n, srv, cli, NFSProgram, ProcNull, nil)
	if p.Err != nil || p.Status != StatusOK {
		t.Errorf("NULL: %v status %d", p.Err, p.Status)
	}
}

func TestLookupGetAttrRead(t *testing.T) {
	n, srv, fs, cli := deploy(t, core.LDLP)
	fh := fs.Create("motd", []byte("small messages rule"))
	_ = fh

	p := call(t, n, srv, cli, NFSProgram, ProcLookup, LookupArgs("motd"))
	got, err := LookupReply(p.Reply)
	if err != nil || got == 0 {
		t.Fatalf("lookup: fh=%d err=%v", got, err)
	}

	p = call(t, n, srv, cli, NFSProgram, ProcGetAttr, GetAttrArgs(got))
	attr, err := GetAttrReply(p.Reply)
	if err != nil || attr.Size != 19 {
		t.Fatalf("getattr: %+v err=%v", attr, err)
	}

	p = call(t, n, srv, cli, NFSProgram, ProcRead, ReadArgs(got, 6, 8))
	if string(p.Reply) != "messages" {
		t.Errorf("read window = %q", p.Reply)
	}
	if s := mbuf.PoolStats(); s.InUse != 0 {
		t.Errorf("mbuf leak: %+v", s)
	}
}

func TestLookupMissingFile(t *testing.T) {
	n, srv, _, cli := deploy(t, core.Conventional)
	p := call(t, n, srv, cli, NFSProgram, ProcLookup, LookupArgs("nope"))
	fh, err := LookupReply(p.Reply)
	if err != nil || fh != 0 {
		t.Errorf("missing file: fh=%d err=%v", fh, err)
	}
}

func TestWriteExtendsAndOverwrites(t *testing.T) {
	n, srv, fs, cli := deploy(t, core.Conventional)
	fh := fs.Create("log", []byte("aaaa"))
	p := call(t, n, srv, cli, NFSProgram, ProcWrite, WriteArgs(fh, 2, []byte("BBBB")))
	nw, err := WriteReply(p.Reply)
	if err != nil || nw != 4 {
		t.Fatalf("write: n=%d err=%v", nw, err)
	}
	p = call(t, n, srv, cli, NFSProgram, ProcRead, ReadArgs(fh, 0, 100))
	if string(p.Reply) != "aaBBBB" {
		t.Errorf("after write: %q", p.Reply)
	}
}

func TestUnknownProgAndProc(t *testing.T) {
	n, srv, _, cli := deploy(t, core.Conventional)
	p := call(t, n, srv, cli, 424242, 0, nil)
	if p.Status != StatusProgUnavail {
		t.Errorf("unknown prog status = %d", p.Status)
	}
	p = call(t, n, srv, cli, NFSProgram, 99, nil)
	if p.Status != StatusProcUnavail {
		t.Errorf("unknown proc status = %d", p.Status)
	}
}

func TestGarbageArgs(t *testing.T) {
	n, srv, _, cli := deploy(t, core.Conventional)
	p := call(t, n, srv, cli, NFSProgram, ProcLookup, []byte{1})
	if p.Status != StatusGarbageArgs {
		t.Errorf("garbage args status = %d", p.Status)
	}
	p = call(t, n, srv, cli, NFSProgram, ProcGetAttr, GetAttrArgs(999))
	if p.Status != StatusSystemErr {
		t.Errorf("stale handle status = %d", p.Status)
	}
}

func TestDuplicateRequestCacheMakesWriteRetrySafe(t *testing.T) {
	// The classic: the WRITE executes, the REPLY is lost, the client
	// retries with the same XID. The duplicate-request cache must answer
	// from the cache — the write must not apply twice.
	n, srv, fs, cli := deploy(t, core.Conventional)
	cli.RetryInterval = 0.3
	fh := fs.Create("append.log", nil)

	lost := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipCli && lost == 0 {
			lost++
			return true // drop the first reply
		}
		return false
	}
	p := cli.Call(NFSProgram, ProcWrite, WriteArgs(fh, 0, []byte("once")))
	pump(n, srv, cli)
	if p.Done {
		t.Fatal("completed despite lost reply")
	}
	n.Tick(0.35)
	cli.Tick()
	pump(n, srv, cli)
	if !p.Done || p.Err != nil {
		t.Fatalf("retry failed: %v / %v", p.Done, p.Err)
	}
	if srv.Duplicates != 1 {
		t.Errorf("server duplicates = %d, want 1", srv.Duplicates)
	}
	if fs.Writes != 1 {
		t.Errorf("write executed %d times, want exactly 1", fs.Writes)
	}
	if cli.Retries != 1 {
		t.Errorf("client retries = %d, want 1", cli.Retries)
	}
}

func TestDupCacheEviction(t *testing.T) {
	n, srv, _, cli := deploy(t, core.Conventional)
	srv.DupCacheSize = 4
	for i := 0; i < 10; i++ {
		call(t, n, srv, cli, NFSProgram, ProcNull, nil)
	}
	if len(srv.dupCache) > 4 || len(srv.dupOrder) > 4 {
		t.Errorf("dup cache grew beyond bound: %d/%d", len(srv.dupCache), len(srv.dupOrder))
	}
}

func TestTimeoutWhenServerGone(t *testing.T) {
	n, srv, _, cli := deploy(t, core.Conventional)
	cli.RetryInterval = 0.2
	cli.MaxAttempts = 2
	n.Loss = func(dst layers.IPAddr, data []byte) bool { return dst == ipSrv }
	p := cli.Call(NFSProgram, ProcNull, nil)
	for i := 0; i < 5; i++ {
		n.Tick(0.25)
		cli.Tick()
		pump(n, srv, cli)
	}
	if !p.Done || p.Err == nil {
		t.Fatalf("black-holed call: done=%v err=%v", p.Done, p.Err)
	}
	if cli.Timeouts != 1 {
		t.Errorf("timeouts = %d", cli.Timeouts)
	}
}

func TestStringCodec(t *testing.T) {
	b := putString(nil, "hello")
	s, rest, err := getString(b)
	if err != nil || s != "hello" || len(rest) != 0 {
		t.Errorf("string codec: %q %v %v", s, rest, err)
	}
	if _, _, err := getString([]byte{0, 0, 0, 9, 'x'}); err == nil {
		t.Error("overlong string accepted")
	}
	if _, _, err := getString([]byte{1}); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestFileServerNames(t *testing.T) {
	_, _, fs, _ := deploy(t, core.Conventional)
	fs.Create("b", nil)
	fs.Create("a", nil)
	names := fs.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func BenchmarkNFSGetAttr(b *testing.B) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	hs := n.AddHost("srv", ipSrv, netstack.DefaultOptions(core.Conventional))
	hc := n.AddHost("cli", ipCli, netstack.DefaultOptions(core.Conventional))
	srv, _ := NewServer(hs, rpcPort)
	fs := NewFileServer(srv)
	cli, _ := NewClient(hc, 900, ipSrv, rpcPort)
	fh := fs.Create("f", make([]byte, 100))
	args := GetAttrArgs(fh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := cli.Call(NFSProgram, ProcGetAttr, args)
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		cli.Poll()
		if !p.Done {
			b.Fatal("stuck")
		}
	}
}
