package mbuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAppendAndContiguous(t *testing.T) {
	ResetPool()
	data := make([]byte, 5000)
	rand.New(rand.NewSource(1)).Read(data)
	m := FromBytes(data)
	defer m.FreeChain()
	if m.PktLen() != 5000 {
		t.Fatalf("PktLen = %d, want 5000", m.PktLen())
	}
	if !bytes.Equal(m.Contiguous(), data) {
		t.Error("contiguous data does not round-trip")
	}
	if m.NumBufs() < 2 {
		t.Errorf("5000 bytes should span multiple clusters, got %d bufs", m.NumBufs())
	}
}

func TestPrependInPlaceAndNewHead(t *testing.T) {
	ResetPool()
	m := FromBytes([]byte("payload"))
	// First prepend fits the headroom: same head.
	m2, hdr := m.Prepend(8)
	if m2 != m {
		t.Error("small prepend should reuse the head mbuf")
	}
	copy(hdr, "HDR8####")
	if got := string(m2.Contiguous()); got != "HDR8####payload" {
		t.Errorf("after prepend: %q", got)
	}
	// Exhaust the headroom: a new head must be allocated.
	m3, _ := m2.Prepend(MCLBytes / 2)
	if m3 == m2 {
		t.Error("oversized prepend should allocate a new head")
	}
	if m3.PktLen() != MCLBytes/2+15 {
		t.Errorf("PktLen = %d", m3.PktLen())
	}
	m3.FreeChain()
}

func TestPrependZeroesHeader(t *testing.T) {
	ResetPool()
	m := FromBytes([]byte("x"))
	defer m.FreeChain()
	_, hdr := m.Prepend(20)
	for i, b := range hdr {
		if b != 0 {
			t.Fatalf("header byte %d = %#x, want 0", i, b)
		}
	}
}

func TestAdjFrontAndBack(t *testing.T) {
	ResetPool()
	m := FromBytes([]byte("aaabbbcccddd"))
	defer m.FreeChain()
	m.Adj(3) // strip "aaa"
	if got := string(m.Contiguous()); got != "bbbcccddd" {
		t.Errorf("after front adj: %q", got)
	}
	m.Adj(-3) // trim "ddd"
	if got := string(m.Contiguous()); got != "bbbccc" {
		t.Errorf("after back adj: %q", got)
	}
	m.Adj(-100) // over-trim empties
	if m.PktLen() != 0 {
		t.Errorf("over-trim left %d bytes", m.PktLen())
	}
}

func TestAdjAcrossMbufBoundaries(t *testing.T) {
	ResetPool()
	big := make([]byte, 3000)
	for i := range big {
		big[i] = byte(i)
	}
	m := FromBytes(big)
	defer m.FreeChain()
	m.Adj(2500)
	want := big[2500:]
	if !bytes.Equal(m.Contiguous(), want) {
		t.Error("front adj across boundary lost data")
	}
}

func TestPullup(t *testing.T) {
	ResetPool()
	// Build a fragmented chain: three small pieces.
	m := FromBytes([]byte("12345"))
	m.next = FromBytes([]byte("67890"))
	m.next.next = FromBytes([]byte("abcde"))
	m2, err := m.Pullup(12)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() < 12 {
		t.Errorf("head has %d contiguous bytes, want >= 12", m2.Len())
	}
	if got := string(m2.Contiguous()); got != "1234567890abcde" {
		t.Errorf("pullup mangled data: %q", got)
	}
	m2.FreeChain()
}

func TestPullupErrors(t *testing.T) {
	ResetPool()
	m := FromBytes([]byte("short"))
	defer m.FreeChain()
	if _, err := m.Pullup(100); err == nil {
		t.Error("pullup beyond packet length should fail")
	}
}

func TestPullupNoOpWhenContiguous(t *testing.T) {
	ResetPool()
	m := FromBytes([]byte("abcdef"))
	defer m.FreeChain()
	m2, err := m.Pullup(3)
	if err != nil || m2 != m {
		t.Error("pullup within the head should be a no-op")
	}
}

func TestSplit(t *testing.T) {
	ResetPool()
	m := FromBytes([]byte("headertailpart"))
	tail := m.Split(6)
	if tail == nil {
		t.Fatal("split returned nil")
	}
	if got := string(m.Contiguous()); got != "header" {
		t.Errorf("head after split: %q", got)
	}
	if got := string(tail.Contiguous()); got != "tailpart" {
		t.Errorf("tail after split: %q", got)
	}
	m.FreeChain()
	tail.FreeChain()
}

func TestSplitAtOrBeyondEnd(t *testing.T) {
	ResetPool()
	m := FromBytes([]byte("abc"))
	defer m.FreeChain()
	if m.Split(3) != nil {
		t.Error("split at end should return nil")
	}
	if m.Split(10) != nil {
		t.Error("split beyond end should return nil")
	}
}

func TestCopyOutWindows(t *testing.T) {
	ResetPool()
	data := make([]byte, 4000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m := FromBytes(data)
	defer m.FreeChain()
	dst := make([]byte, 100)
	if n := m.CopyOut(1950, dst); n != 100 {
		t.Fatalf("copied %d, want 100", n)
	}
	if !bytes.Equal(dst, data[1950:2050]) {
		t.Error("copyout window mismatch")
	}
	// Short copy at the end.
	if n := m.CopyOut(3950, dst); n != 50 {
		t.Errorf("end copy = %d, want 50", n)
	}
}

func TestChunksSkipEmpty(t *testing.T) {
	ResetPool()
	m := FromBytes([]byte("abc"))
	m.next = Get() // empty mbuf in the middle
	m.next.next = FromBytes([]byte("def"))
	defer m.FreeChain()
	chunks := m.Chunks()
	if len(chunks) != 2 {
		t.Fatalf("chunks = %d, want 2 (empty skipped)", len(chunks))
	}
	if string(chunks[0]) != "abc" || string(chunks[1]) != "def" {
		t.Errorf("chunks = %q", chunks)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	ResetPool()
	m := Get()
	m.Free()
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	m.Free()
}

func TestPoolReuseAndLeakAccounting(t *testing.T) {
	ResetPool()
	m := GetCluster()
	m.FreeChain()
	m2 := GetCluster()
	defer m2.FreeChain()
	s := PoolStats()
	if s.Allocs != 2 || s.Frees != 1 || s.InUse != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBalancedUseLeavesNothingInUse(t *testing.T) {
	ResetPool()
	for i := 0; i < 100; i++ {
		m := FromBytes(make([]byte, 100+i*37))
		m, _ = m.Prepend(40)
		m.Adj(12)
		m.FreeChain()
	}
	if s := PoolStats(); s.InUse != 0 {
		t.Errorf("leak: %+v", s)
	}
}

// Property: any sequence of prepend/append/adj operations preserves the
// expected byte string, modelled against a plain []byte.
func TestChainMatchesSliceModelQuick(t *testing.T) {
	f := func(seed int64) bool {
		ResetPool()
		rng := rand.New(rand.NewSource(seed))
		model := []byte("initial-data")
		m := FromBytes(model)
		model = append([]byte(nil), model...)
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0: // prepend
				n := 1 + rng.Intn(32)
				var hdr []byte
				m, hdr = m.Prepend(n)
				for i := range hdr {
					hdr[i] = byte(rng.Intn(256))
				}
				model = append(append([]byte(nil), hdr...), model...)
			case 1: // append
				n := 1 + rng.Intn(200)
				data := make([]byte, n)
				rng.Read(data)
				m = m.Append(data)
				model = append(model, data...)
			case 2: // trim front
				if len(model) == 0 {
					continue
				}
				n := rng.Intn(len(model))
				m.Adj(n)
				model = model[n:]
			case 3: // trim back
				if len(model) == 0 {
					continue
				}
				n := rng.Intn(len(model))
				m.Adj(-n)
				model = model[:len(model)-n]
			}
			if !bytes.Equal(m.Contiguous(), model) {
				return false
			}
		}
		m.FreeChain()
		return PoolStats().InUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Split(n) + reassembly by append preserves content for any n.
func TestSplitReassembleQuick(t *testing.T) {
	f := func(seed int64, cut uint16) bool {
		ResetPool()
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 1+rng.Intn(4000))
		rng.Read(data)
		m := FromBytes(data)
		n := int(cut) % (len(data) + 1)
		tail := m.Split(n)
		head := m.Contiguous()
		var whole []byte
		whole = append(whole, head...)
		if tail != nil {
			whole = append(whole, tail.Contiguous()...)
			tail.FreeChain()
		}
		m.FreeChain()
		return bytes.Equal(whole, data) && PoolStats().InUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPrependHeader(b *testing.B) {
	ResetPool()
	m := FromBytes(make([]byte, 512))
	defer m.FreeChain()
	for i := 0; i < b.N; i++ {
		m2, _ := m.Prepend(20)
		m2.Adj(20)
		m = m2
	}
}

func BenchmarkAllocFreeCluster(b *testing.B) {
	ResetPool()
	for i := 0; i < b.N; i++ {
		GetCluster().Free()
	}
}

// Property: CopyOut agrees with slicing the contiguous view, for any
// window over any chain shape.
func TestCopyOutMatchesContiguousQuick(t *testing.T) {
	f := func(seed int64, offSel, lenSel uint16) bool {
		ResetPool()
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 1+rng.Intn(5000))
		rng.Read(data)
		m := FromBytes(data)
		defer m.FreeChain()
		off := int(offSel) % (len(data) + 10)
		length := int(lenSel) % (len(data) + 10)
		dst := make([]byte, length)
		n := m.CopyOut(off, dst)
		want := 0
		if off < len(data) {
			want = len(data) - off
			if want > length {
				want = length
			}
		}
		if n != want {
			return false
		}
		if n == 0 {
			return true
		}
		return bytes.Equal(dst[:n], data[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
