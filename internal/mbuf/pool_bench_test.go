package mbuf

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// legacyPool reproduces the allocator this package had before sharding:
// one process-wide mutex around the freelists and the counters, taken on
// every Get and every Free. It exists only as the benchmark baseline the
// sharded pool is measured against.
type legacyPool struct {
	mu     sync.Mutex
	small  []*Mbuf
	allocs int64
	frees  int64
	inUse  int64
}

func (lp *legacyPool) get() *Mbuf {
	lp.mu.Lock()
	var m *Mbuf
	if n := len(lp.small); n > 0 {
		m, lp.small = lp.small[n-1], lp.small[:n-1]
	}
	lp.allocs++
	lp.inUse++
	lp.mu.Unlock()
	if m == nil {
		m = &Mbuf{buf: make([]byte, MSize)}
	}
	m.off = len(m.buf) / 4
	m.length = 0
	m.next = nil
	m.freed = false
	return m
}

func (lp *legacyPool) put(m *Mbuf) {
	if m.freed {
		panic("mbuf: double free")
	}
	m.freed = true
	lp.mu.Lock()
	lp.frees++
	lp.inUse--
	lp.small = append(lp.small, m)
	lp.mu.Unlock()
}

// benchWorkers splits b.N alloc/free pairs across workers goroutines and
// waits for all of them; each worker holds a small batch live at a time
// so the freelists are genuinely exercised.
func benchWorkers(b *testing.B, workers int, loop func(worker, iters int)) {
	prev := runtime.GOMAXPROCS(0)
	if workers > prev {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / workers
	for w := 0; w < workers; w++ {
		iters := per
		if w == workers-1 {
			iters = b.N - per*(workers-1)
		}
		wg.Add(1)
		go func(w, iters int) {
			defer wg.Done()
			loop(w, iters)
		}(w, iters)
	}
	wg.Wait()
}

const benchBatch = 8

// BenchmarkPoolAllocFree compares the old global-mutex allocator against
// the sharded pool, serially and with 4 concurrent workers. The sharded
// pool gives each worker its own shard — the contention-free fast path
// every receive shard and host transmit path gets in the netstack.
//
// The separation appears with real cores: 4 workers on 4+ CPUs serialize
// completely on the legacy mutex (its ns/op grows with the worker count)
// while the sharded pool's per-worker shards never meet, so its ns/op
// stays flat. Both allocators now count inside their lock's critical
// section, so per op each pays exactly one lock/unlock pair — the sharded
// pool's earlier per-op atomic counters made it trail the global mutex
// here (the BENCH_2.json regression); TestShardedPoolBeatsGlobalMutexAt4Workers
// guards against that coming back.
func BenchmarkPoolAllocFree(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("global-mutex/workers=%d", workers), func(b *testing.B) {
			lp := &legacyPool{}
			benchWorkers(b, workers, func(_, iters int) {
				var batch [benchBatch]*Mbuf
				for i := 0; i < iters; i += benchBatch {
					n := min(benchBatch, iters-i)
					for j := 0; j < n; j++ {
						batch[j] = lp.get()
					}
					for j := 0; j < n; j++ {
						lp.put(batch[j])
					}
				}
			})
			b.StopTimer()
			if lp.inUse != 0 {
				b.Fatalf("legacy pool leak: %d in use", lp.inUse)
			}
		})
		b.Run(fmt.Sprintf("sharded/workers=%d", workers), func(b *testing.B) {
			pool := NewPool(workers)
			benchWorkers(b, workers, func(w, iters int) {
				ps := pool.Shard(w)
				var batch [benchBatch]*Mbuf
				for i := 0; i < iters; i += benchBatch {
					n := min(benchBatch, iters-i)
					for j := 0; j < n; j++ {
						batch[j] = ps.Get()
					}
					for j := 0; j < n; j++ {
						batch[j].Free()
					}
				}
			})
			b.StopTimer()
			if st := pool.Stats(); st.InUse != 0 {
				b.Fatalf("sharded pool leak: %+v", st)
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
