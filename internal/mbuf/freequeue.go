package mbuf

const (
	// freeQueueOwners bounds how many distinct owning shards one queue
	// batches for; frees to shards beyond that fall back to direct
	// release. Receive paths free frames from a handful of transmit
	// shards, so collisions are rare in practice.
	freeQueueOwners = 8
	// freeQueueBatch is the number of buffers parked per owner before the
	// queue flushes them to the owner's freelist under one lock.
	freeQueueBatch = 32
)

// FreeQueue batches frees whose owner is another goroutine's shard. A
// cross-shard Free bounces the owner's lock and counter cache lines once
// per buffer; a FreeQueue parks buffers per owning shard and returns a
// whole batch under a single lock acquisition, so the owner's lines are
// touched once per freeQueueBatch buffers instead.
//
// A FreeQueue belongs to exactly one goroutine (it is not safe for
// concurrent use) — in the stack, each receive shard owns one. Buffers
// are marked freed on enqueue, so double frees still panic immediately,
// but they are counted and reusable only when a batch flushes: callers
// must Flush at quiescent points (end of a pump cycle, teardown) before
// trusting Pool.Stats leak checks.
type FreeQueue struct {
	owners [freeQueueOwners]*PoolShard
	count  [freeQueueOwners]int
	batch  [freeQueueOwners][freeQueueBatch]*Mbuf
}

// Free parks one mbuf for its owning shard and returns the next mbuf in
// the chain. When every owner slot is taken by other shards, the buffer
// is released directly instead.
//
//ldlp:hotpath
func (q *FreeQueue) Free(m *Mbuf) *Mbuf {
	if m.freed {
		panic("mbuf: double free")
	}
	next := m.next
	m.freed = true
	m.next = nil
	ps := m.owner
	slot := -1
	for i := 0; i < freeQueueOwners; i++ {
		if q.owners[i] == ps {
			slot = i
			break
		}
		if q.owners[i] == nil {
			q.owners[i] = ps
			slot = i
			break
		}
	}
	if slot < 0 {
		m.release()
		return next
	}
	q.batch[slot][q.count[slot]] = m
	q.count[slot]++
	if q.count[slot] == freeQueueBatch {
		q.flushSlot(slot)
	}
	return next
}

// FreeChain parks every mbuf in the chain.
//
//ldlp:hotpath
func (q *FreeQueue) FreeChain(m *Mbuf) {
	for m != nil {
		m = q.Free(m)
	}
}

// Flush returns every parked buffer to its owning shard. Call at
// quiescent points so leak checks (and the freelists) see the frees.
//
//ldlp:quiescent
func (q *FreeQueue) Flush() {
	for i := range q.owners {
		if q.count[i] > 0 {
			q.flushSlot(i)
		}
	}
}

// flushSlot drains one owner's batch. The whole batch is counted and
// pushed under a single TryLock'd critical section; if the owner's lock
// is contended right now, the batch diverts to the overflow tier with
// atomic accounting, same as a direct release would.
func (q *FreeQueue) flushSlot(i int) {
	ps := q.owners[i]
	n := q.count[i]
	batch := q.batch[i][:n]
	if ps.mu.TryLock() {
		ps.fastFrees += int64(n)
		// The spill set is bounded by the batch itself, so a fixed array
		// keeps this path allocation-free (a plain []*Mbuf here used to
		// heap-allocate once per flush when a freelist hit its cap — the
		// interprocedural hotpathalloc walk caught it).
		var spillArr [freeQueueBatch]*Mbuf
		spilled := 0
		for _, m := range batch {
			if m.cluster {
				ps.fastClusters--
				if len(ps.clust) < shardFreeCap {
					//lint:ignore hotpathalloc freelist is capped at shardFreeCap, so growth is bounded and amortized
					ps.clust = append(ps.clust, m)
					continue
				}
			} else {
				if len(ps.small) < shardFreeCap {
					//lint:ignore hotpathalloc freelist is capped at shardFreeCap, so growth is bounded and amortized
					ps.small = append(ps.small, m)
					continue
				}
			}
			spillArr[spilled] = m
			spilled++
		}
		ps.mu.Unlock()
		if spilled > 0 {
			ov := ps.pool.overflow.Load()
			for _, m := range spillArr[:spilled] {
				ps.overflowPuts.Inc()
				if m.cluster {
					ov.clust.Put(m)
				} else {
					ov.small.Put(m)
				}
			}
		}
	} else {
		ov := ps.pool.overflow.Load()
		for _, m := range batch {
			ps.slowFrees.Inc()
			if m.cluster {
				ps.slowClusters.Add(-1)
			}
			ps.overflowPuts.Inc()
			if m.cluster {
				ov.clust.Put(m)
			} else {
				ov.small.Put(m)
			}
		}
	}
	for j := range batch {
		batch[j] = nil
	}
	q.count[i] = 0
}
