// Package mbuf implements 4.4BSD-style message buffers: chains of small
// buffers and larger clusters supporting the no-copy header operations
// protocol stacks need (prepend, trim, pull-up, split).
//
// The paper leans on this design twice: §1.1 credits the mbuf system with
// making header stripping and fragment concatenation copy-free, and §3.2
// notes LDLP "requires a buffer management scheme where lower layers hand
// off their buffers to the higher layers" — which mbufs provide, since an
// mbuf chain owns its storage and moves between layer queues by pointer.
//
// Buffers are pooled. The pool is safe for concurrent use; individual
// mbuf chains are not (a chain belongs to one layer at a time — exactly
// the hand-off discipline LDLP wants).
package mbuf

import (
	"fmt"
	"sync"
)

const (
	// MSize is the size of a small mbuf's storage.
	MSize = 256
	// MCLBytes is the size of a cluster mbuf's storage (one page half,
	// like 4.4BSD's 2 KB clusters).
	MCLBytes = 2048
)

// Stats counts pool activity, for leak detection.
type Stats struct {
	Allocs   int64
	Frees    int64
	InUse    int64
	Clusters int64
}

var (
	poolMu    sync.Mutex
	smallPool []*Mbuf
	clustPool []*Mbuf
	stats     Stats
)

// PoolStats returns a snapshot of allocation counters.
func PoolStats() Stats {
	poolMu.Lock()
	defer poolMu.Unlock()
	return stats
}

// ResetPool discards pooled buffers and zeroes the counters (test
// hygiene).
func ResetPool() {
	poolMu.Lock()
	defer poolMu.Unlock()
	smallPool = nil
	clustPool = nil
	stats = Stats{}
}

// Mbuf is one buffer in a chain. The head of a chain represents a packet;
// PktLen is maintained on the head only.
type Mbuf struct {
	buf     []byte
	off     int
	length  int
	next    *Mbuf
	cluster bool
	freed   bool
}

// Get allocates a small mbuf with its data region positioned mid-buffer
// so both prepends and appends have room.
func Get() *Mbuf {
	return get(false)
}

// GetCluster allocates a cluster mbuf.
func GetCluster() *Mbuf {
	return get(true)
}

func get(cluster bool) *Mbuf {
	poolMu.Lock()
	var m *Mbuf
	if cluster {
		if n := len(clustPool); n > 0 {
			m, clustPool = clustPool[n-1], clustPool[:n-1]
		}
	} else {
		if n := len(smallPool); n > 0 {
			m, smallPool = smallPool[n-1], smallPool[:n-1]
		}
	}
	stats.Allocs++
	stats.InUse++
	if cluster {
		stats.Clusters++
	}
	poolMu.Unlock()
	if m == nil {
		size := MSize
		if cluster {
			size = MCLBytes
		}
		m = &Mbuf{buf: make([]byte, size), cluster: cluster}
	}
	// Leave ~25% headroom for prepends.
	m.off = len(m.buf) / 4
	m.length = 0
	m.next = nil
	m.freed = false
	return m
}

// Free releases this single mbuf to the pool and returns the next mbuf in
// the chain. Double frees panic: they are ownership bugs.
func (m *Mbuf) Free() *Mbuf {
	if m.freed {
		panic("mbuf: double free")
	}
	next := m.next
	m.freed = true
	m.next = nil
	poolMu.Lock()
	if m.cluster {
		clustPool = append(clustPool, m)
		stats.Clusters--
	} else {
		smallPool = append(smallPool, m)
	}
	stats.Frees++
	stats.InUse--
	poolMu.Unlock()
	return next
}

// FreeChain releases every mbuf in the chain.
func (m *Mbuf) FreeChain() {
	for m != nil {
		m = m.Free()
	}
}

// Bytes returns the mbuf's current data as a slice (aliasing the
// underlying storage).
func (m *Mbuf) Bytes() []byte { return m.buf[m.off : m.off+m.length] }

// Len returns this mbuf's data length (not the chain's).
func (m *Mbuf) Len() int { return m.length }

// Next returns the next mbuf in the chain, or nil.
func (m *Mbuf) Next() *Mbuf { return m.next }

// PktLen returns the total data length of the chain.
func (m *Mbuf) PktLen() int {
	n := 0
	for cur := m; cur != nil; cur = cur.next {
		n += cur.length
	}
	return n
}

// leading reports the prepend room before the data region.
func (m *Mbuf) leading() int { return m.off }

// trailing reports the append room after the data region.
func (m *Mbuf) trailing() int { return len(m.buf) - m.off - m.length }

// Append copies data onto the end of the chain, extending the last mbuf
// and allocating more as needed. It returns the (unchanged) head.
func (m *Mbuf) Append(data []byte) *Mbuf {
	last := m
	for last.next != nil {
		last = last.next
	}
	for len(data) > 0 {
		room := last.trailing()
		if room == 0 {
			nm := alikeFor(len(data))
			nm.off = 0
			last.next = nm
			last = nm
			room = last.trailing()
		}
		n := len(data)
		if n > room {
			n = room
		}
		copy(last.buf[last.off+last.length:], data[:n])
		last.length += n
		data = data[n:]
	}
	return m
}

func alikeFor(n int) *Mbuf {
	if n > MSize/2 {
		return GetCluster()
	}
	return Get()
}

// Prepend makes room for n bytes in front of the chain's data and returns
// the new head (a fresh mbuf if the current head lacks headroom). The new
// bytes are zeroed and returned for the caller to fill — the no-copy
// header push every layer's output path uses.
func (m *Mbuf) Prepend(n int) (*Mbuf, []byte) {
	if n <= m.leading() {
		m.off -= n
		m.length += n
		hdr := m.buf[m.off : m.off+n]
		for i := range hdr {
			hdr[i] = 0
		}
		return m, hdr
	}
	nm := alikeFor(n)
	if n > len(nm.buf) {
		nm.Free()
		panic(fmt.Sprintf("mbuf: prepend of %d exceeds cluster size", n))
	}
	nm.off = len(nm.buf) - n
	nm.length = n
	nm.next = m
	hdr := nm.buf[nm.off:]
	for i := range hdr {
		hdr[i] = 0
	}
	return nm, hdr
}

// Adj trims data from the chain like 4.4BSD's m_adj: positive n removes
// from the front, negative n removes from the back. Trimming more than
// the chain holds empties it.
func (m *Mbuf) Adj(n int) {
	if n >= 0 {
		for cur := m; cur != nil && n > 0; cur = cur.next {
			if cur.length >= n {
				cur.off += n
				cur.length -= n
				return
			}
			n -= cur.length
			cur.off += cur.length
			cur.length = 0
		}
		return
	}
	n = -n
	total := m.PktLen()
	if n >= total {
		n = total
	}
	keep := total - n
	for cur := m; cur != nil; cur = cur.next {
		if keep >= cur.length {
			keep -= cur.length
			continue
		}
		cur.length = keep
		keep = 0
	}
}

// Pullup rearranges the chain so its first n bytes are contiguous in the
// head mbuf, like m_pullup — decoders need contiguous headers. It returns
// the new head, or an error if the chain is shorter than n or n exceeds a
// cluster.
func (m *Mbuf) Pullup(n int) (*Mbuf, error) {
	if n <= m.length {
		return m, nil
	}
	if n > m.PktLen() {
		return m, fmt.Errorf("mbuf: pullup %d beyond packet length %d", n, m.PktLen())
	}
	if n > MCLBytes {
		return m, fmt.Errorf("mbuf: pullup %d exceeds cluster size", n)
	}
	head := alikeFor(n)
	head.off = 0
	// Gather n bytes from the chain into the new head.
	rest := m
	for head.length < n && rest != nil {
		take := n - head.length
		if take > rest.length {
			take = rest.length
		}
		copy(head.buf[head.length:], rest.Bytes()[:take])
		head.length += take
		rest.off += take
		rest.length -= take
		if rest.length == 0 {
			rest = rest.Free()
		}
	}
	head.next = rest
	return head, nil
}

// Split divides the chain at byte offset n: the receiver keeps the first
// n bytes, and the remainder is returned as a new chain (nil if n >= the
// packet length). Storage is copied only at the split point's partial
// mbuf.
func (m *Mbuf) Split(n int) *Mbuf {
	if n >= m.PktLen() {
		return nil
	}
	cur := m
	for cur != nil && n > cur.length {
		n -= cur.length
		cur = cur.next
	}
	if cur == nil {
		return nil
	}
	if n == cur.length {
		tail := cur.next
		cur.next = nil
		return tail
	}
	// Partial mbuf: copy the tail part into a fresh mbuf.
	tailLen := cur.length - n
	nm := alikeFor(tailLen)
	nm.off = 0
	copy(nm.buf, cur.Bytes()[n:])
	nm.length = tailLen
	nm.next = cur.next
	cur.length = n
	cur.next = nil
	return nm
}

// CopyOut copies length bytes starting at offset off out of the chain
// into dst, returning the number of bytes copied (short if the chain
// ends).
func (m *Mbuf) CopyOut(off int, dst []byte) int {
	copied := 0
	for cur := m; cur != nil && copied < len(dst); cur = cur.next {
		if off >= cur.length {
			off -= cur.length
			continue
		}
		n := copy(dst[copied:], cur.Bytes()[off:])
		copied += n
		off = 0
	}
	return copied
}

// Contiguous returns the chain's full contents as one slice, copying only
// if the chain has more than one mbuf.
func (m *Mbuf) Contiguous() []byte {
	if m.next == nil {
		return m.Bytes()
	}
	out := make([]byte, m.PktLen())
	m.CopyOut(0, out)
	return out
}

// Chunks returns the chain's data as a slice of per-mbuf slices, for
// chained checksumming without copies.
func (m *Mbuf) Chunks() [][]byte {
	var out [][]byte
	for cur := m; cur != nil; cur = cur.next {
		if cur.length > 0 {
			out = append(out, cur.Bytes())
		}
	}
	return out
}

// FromBytes builds a chain holding a copy of data, using clusters for
// bulk.
func FromBytes(data []byte) *Mbuf {
	m := alikeFor(len(data))
	m.off = len(m.buf) / 4
	if len(data) <= m.trailing() {
		copy(m.buf[m.off:], data)
		m.length = len(data)
		return m
	}
	m.length = 0
	return m.Append(data)
}

// NumBufs counts the mbufs in the chain.
func (m *Mbuf) NumBufs() int {
	n := 0
	for cur := m; cur != nil; cur = cur.next {
		n++
	}
	return n
}
