// Package mbuf implements 4.4BSD-style message buffers: chains of small
// buffers and larger clusters supporting the no-copy header operations
// protocol stacks need (prepend, trim, pull-up, split).
//
// The paper leans on this design twice: §1.1 credits the mbuf system with
// making header stripping and fragment concatenation copy-free, and §3.2
// notes LDLP "requires a buffer management scheme where lower layers hand
// off their buffers to the higher layers" — which mbufs provide, since an
// mbuf chain owns its storage and moves between layer queues by pointer.
//
// Buffers are pooled. A Pool is split into cache-line-padded shards so
// that concurrent allocators (one shard per receive-path worker, one per
// host transmit path) never serialize on a global lock: the fast path is
// a TryLock'd per-shard freelist that never blocks — on the rare
// contention miss, or when a shard's freelist over/underflows, the
// allocation falls through to a pool-wide sync.Pool, which is per-P and
// scales with cores. Accounting piggybacks on the freelist critical
// section (plain adds under the already-held shard lock); only the
// TryLock-miss slow paths pay an atomic, so the fast path costs the same
// two lock RMWs the old global-mutex allocator paid — without sharing
// them.
//
// Every mbuf remembers its owning shard: Free returns it there no matter
// which goroutine frees it, so a chain handed across the stack (or across
// hosts, LDLP's §3.2 ownership transfer) drains back to the pool that
// allocated it and each shard's freelist stays hot. When the freeing
// goroutine is not the owner — a receive shard retiring frames another
// host's transmit shard allocated — a FreeQueue batches the returns so
// the owner's lock and counters are touched once per batch instead of
// once per buffer (see freequeue.go).
//
// The pool is safe for concurrent use; individual mbuf chains are not (a
// chain belongs to one layer at a time — exactly the hand-off discipline
// LDLP wants).
package mbuf

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ldlp/internal/telemetry"
)

const (
	// MSize is the size of a small mbuf's storage.
	MSize = 256
	// MCLBytes is the size of a cluster mbuf's storage (one page half,
	// like 4.4BSD's 2 KB clusters).
	MCLBytes = 2048
	// shardFreeCap bounds a shard's private freelist; beyond it, freed
	// buffers overflow into the pool-wide sync.Pool (and may be reclaimed
	// by the GC, bounding idle memory).
	shardFreeCap = 512
)

// Stats counts pool activity, for leak detection and tier attribution.
type Stats struct {
	Allocs   int64
	Frees    int64
	InUse    int64
	Clusters int64
	// HeapAllocs counts allocations that missed both the shard freelist
	// and the overflow tier and fell through to the heap — the cold
	// path. Steady-state traffic should hold this flat.
	HeapAllocs int64
	// OverflowGets/OverflowPuts count traffic through the pool-wide
	// sync.Pool tier: hits there mean a shard's private freelist ran
	// dry (or filled up on free) — cross-shard imbalance.
	OverflowGets int64
	OverflowPuts int64
}

// PoolShard is one allocation domain of a Pool. Handles are cheap to
// share; a shard is safe for concurrent use, but callers get the
// contention-free fast path by giving each worker its own shard.
type PoolShard struct {
	pool *Pool
	// mu guards the freelists and the fast-path counters. It is only ever
	// TryLock'd on the alloc/free fast path (never blocks); Stats and
	// Reset take it for real.
	mu    sync.Mutex
	small []*Mbuf
	clust []*Mbuf

	// Fast-path accounting, guarded by mu. Counting inside the freelist
	// critical section costs plain adds on a line the lock already made
	// exclusive — the per-op atomic RMWs these replace were what pushed
	// the sharded allocator behind the old global-mutex pool on
	// BenchmarkPoolAllocFree at workers=4. InUse is derived as
	// allocs-frees rather than kept as a third counter.
	fastAllocs   int64
	fastFrees    int64
	fastClusters int64

	// Slow-path accounting, taken only when TryLock misses (so mu cannot
	// protect it). These are telemetry counters (lock-free, hot-path
	// tagged) rather than bare atomics so this accounting rides the same
	// lint-enforced substrate as the rest of the flight recorder.
	slowAllocs   telemetry.Counter
	slowFrees    telemetry.Counter
	slowClusters telemetry.Counter
	heapAllocs   telemetry.Counter
	overflowGets telemetry.Counter
	overflowPuts telemetry.Counter

	// Keep shards off each other's cache lines: the freelists and
	// counters above are the write-hot fields.
	_ [64]byte
}

// overflowPools is the pool-wide sync.Pool tier, swapped wholesale on
// Reset (sync.Pool itself cannot be drained).
type overflowPools struct {
	small sync.Pool
	clust sync.Pool
}

// Pool is a sharded mbuf allocator.
type Pool struct {
	shards   []*PoolShard
	overflow atomic.Pointer[overflowPools]
}

// NewPool creates a pool with the given number of shards (minimum 1).
func NewPool(shards int) *Pool {
	if shards < 1 {
		shards = 1
	}
	p := &Pool{shards: make([]*PoolShard, shards)}
	for i := range p.shards {
		p.shards[i] = &PoolShard{pool: p}
	}
	p.overflow.Store(&overflowPools{})
	return p
}

// NumShards reports the shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// Shard returns shard i (mod the shard count, so callers can index by
// worker number without clamping).
func (p *Pool) Shard(i int) *PoolShard {
	if i < 0 {
		i = -i
	}
	return p.shards[i%len(p.shards)]
}

// Stats returns the pool's aggregated allocation counters. It takes each
// shard's lock briefly to read the fast-path counters, so concurrent
// allocators momentarily divert to their slow path; totals stay exact
// because both paths feed the same sums. Buffers parked in a FreeQueue
// count as in use until the queue is flushed.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, ps := range p.shards {
		ps.mu.Lock()
		s.Allocs += ps.fastAllocs
		s.Frees += ps.fastFrees
		s.Clusters += ps.fastClusters
		ps.mu.Unlock()
		s.Allocs += ps.slowAllocs.Load()
		s.Frees += ps.slowFrees.Load()
		s.Clusters += ps.slowClusters.Load()
		s.HeapAllocs += ps.heapAllocs.Load()
		s.OverflowGets += ps.overflowGets.Load()
		s.OverflowPuts += ps.overflowPuts.Load()
	}
	s.InUse = s.Allocs - s.Frees
	return s
}

// Reset discards pooled buffers and zeroes the counters (test hygiene).
// Not safe to run concurrently with allocation.
func (p *Pool) Reset() {
	for _, ps := range p.shards {
		ps.mu.Lock()
		ps.small = nil
		ps.clust = nil
		ps.fastAllocs = 0
		ps.fastFrees = 0
		ps.fastClusters = 0
		ps.mu.Unlock()
		ps.slowAllocs.Store(0)
		ps.slowFrees.Store(0)
		ps.slowClusters.Store(0)
		ps.heapAllocs.Store(0)
		ps.overflowGets.Store(0)
		ps.overflowPuts.Store(0)
	}
	p.overflow.Store(&overflowPools{})
}

// defaultPool backs the package-level Get/GetCluster/FromBytes. At least
// 8 shards even on small machines, so per-worker shard handles stay
// distinct in tests that model more cores than the host has.
var defaultPool = func() *Pool {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return NewPool(n)
}()

// DefaultPool returns the pool behind the package-level helpers.
func DefaultPool() *Pool { return defaultPool }

// DefaultShard returns shard i of the default pool (mod its shard
// count) — the handle callers thread through per-worker state.
func DefaultShard(i int) *PoolShard { return defaultPool.Shard(i) }

// PoolStats returns a snapshot of the default pool's counters.
func PoolStats() Stats { return defaultPool.Stats() }

// ResetPool discards the default pool's buffers and zeroes the counters
// (test hygiene).
func ResetPool() { defaultPool.Reset() }

// Mbuf is one buffer in a chain. The head of a chain represents a packet;
// PktLen is maintained on the head only.
type Mbuf struct {
	buf     []byte
	off     int
	length  int
	next    *Mbuf
	owner   *PoolShard
	cluster bool
	freed   bool
}

// Get allocates a small mbuf from the default pool with its data region
// positioned mid-buffer so both prepends and appends have room.
func Get() *Mbuf { return defaultPool.shards[0].get(false) }

// GetCluster allocates a cluster mbuf from the default pool.
func GetCluster() *Mbuf { return defaultPool.shards[0].get(true) }

// Get allocates a small mbuf from this shard.
func (ps *PoolShard) Get() *Mbuf { return ps.get(false) }

// GetCluster allocates a cluster mbuf from this shard.
func (ps *PoolShard) GetCluster() *Mbuf { return ps.get(true) }

//ldlp:hotpath
func (ps *PoolShard) get(cluster bool) *Mbuf {
	var m *Mbuf
	counted := false
	// Fast path: this shard's freelist, if the lock is free right now.
	// The alloc is counted inside the critical section (plain adds under
	// the already-held lock) so the fast path pays no extra atomics.
	if ps.mu.TryLock() {
		if cluster {
			if n := len(ps.clust); n > 0 {
				m, ps.clust = ps.clust[n-1], ps.clust[:n-1]
			}
			ps.fastClusters++
		} else {
			if n := len(ps.small); n > 0 {
				m, ps.small = ps.small[n-1], ps.small[:n-1]
			}
		}
		ps.fastAllocs++
		counted = true
		ps.mu.Unlock()
	}
	if !counted {
		ps.slowAllocs.Inc()
		if cluster {
			ps.slowClusters.Add(1)
		}
	}
	if m == nil {
		// Overflow tier (per-P, scalable), then the heap.
		ov := ps.pool.overflow.Load()
		if cluster {
			m, _ = ov.clust.Get().(*Mbuf)
		} else {
			m, _ = ov.small.Get().(*Mbuf)
		}
		if m != nil {
			ps.overflowGets.Inc()
		}
	}
	if m == nil {
		ps.heapAllocs.Inc()
		size := MSize
		if cluster {
			size = MCLBytes
		}
		//lint:ignore hotpathalloc pool-miss cold path: runs only when the freelist and overflow pool are both empty
		m = &Mbuf{buf: make([]byte, size), cluster: cluster}
	}
	m.owner = ps
	// Leave ~25% headroom for prepends.
	m.off = len(m.buf) / 4
	m.length = 0
	m.next = nil
	m.freed = false
	return m
}

// alikeFor sizes a fresh mbuf for n more bytes, allocating from the same
// shard that owns m so chains stay shard-local.
func (m *Mbuf) alikeFor(n int) *Mbuf {
	if n > MSize/2 {
		return m.owner.get(true)
	}
	return m.owner.get(false)
}

// Free releases this single mbuf to its owning shard and returns the next
// mbuf in the chain. Double frees panic: they are ownership bugs.
//
//ldlp:hotpath
func (m *Mbuf) Free() *Mbuf {
	if m.freed {
		panic("mbuf: double free")
	}
	next := m.next
	m.freed = true
	m.next = nil
	m.release()
	return next
}

// release pushes an already-marked-freed mbuf back to its owning shard
// and records the free on whichever counter set matches the path taken
// (fast counters under the shard lock, slow atomics on a TryLock miss).
//
//ldlp:hotpath
func (m *Mbuf) release() {
	ps := m.owner
	if ps.mu.TryLock() {
		ps.fastFrees++
		if m.cluster {
			ps.fastClusters--
		}
		pushed := false
		if m.cluster {
			if len(ps.clust) < shardFreeCap {
				//lint:ignore hotpathalloc freelist is capped at shardFreeCap, so growth is bounded and amortized
				ps.clust = append(ps.clust, m)
				pushed = true
			}
		} else {
			if len(ps.small) < shardFreeCap {
				//lint:ignore hotpathalloc freelist is capped at shardFreeCap, so growth is bounded and amortized
				ps.small = append(ps.small, m)
				pushed = true
			}
		}
		ps.mu.Unlock()
		if pushed {
			return
		}
	} else {
		ps.slowFrees.Inc()
		if m.cluster {
			ps.slowClusters.Add(-1)
		}
	}
	ov := ps.pool.overflow.Load()
	ps.overflowPuts.Inc()
	if m.cluster {
		ov.clust.Put(m)
	} else {
		ov.small.Put(m)
	}
}

// FreeChain releases every mbuf in the chain.
//
//ldlp:hotpath
func (m *Mbuf) FreeChain() {
	for m != nil {
		m = m.Free()
	}
}

// Bytes returns the mbuf's current data as a slice (aliasing the
// underlying storage).
func (m *Mbuf) Bytes() []byte { return m.buf[m.off : m.off+m.length] }

// Len returns this mbuf's data length (not the chain's).
func (m *Mbuf) Len() int { return m.length }

// Next returns the next mbuf in the chain, or nil.
func (m *Mbuf) Next() *Mbuf { return m.next }

// PktLen returns the total data length of the chain.
func (m *Mbuf) PktLen() int {
	n := 0
	for cur := m; cur != nil; cur = cur.next {
		n += cur.length
	}
	return n
}

// leading reports the prepend room before the data region.
func (m *Mbuf) leading() int { return m.off }

// trailing reports the append room after the data region.
func (m *Mbuf) trailing() int { return len(m.buf) - m.off - m.length }

// Append copies data onto the end of the chain, extending the last mbuf
// and allocating more as needed. It returns the (unchanged) head.
func (m *Mbuf) Append(data []byte) *Mbuf {
	last := m
	for last.next != nil {
		last = last.next
	}
	for len(data) > 0 {
		room := last.trailing()
		if room == 0 {
			nm := m.alikeFor(len(data))
			nm.off = 0
			last.next = nm
			last = nm
			room = last.trailing()
		}
		n := len(data)
		if n > room {
			n = room
		}
		copy(last.buf[last.off+last.length:], data[:n])
		last.length += n
		data = data[n:]
	}
	return m
}

// Prepend makes room for n bytes in front of the chain's data and returns
// the new head (a fresh mbuf if the current head lacks headroom). The new
// bytes are zeroed and returned for the caller to fill — the no-copy
// header push every layer's output path uses.
//
//ldlp:hotpath
func (m *Mbuf) Prepend(n int) (*Mbuf, []byte) {
	if n <= m.leading() {
		m.off -= n
		m.length += n
		hdr := m.buf[m.off : m.off+n]
		for i := range hdr {
			hdr[i] = 0
		}
		return m, hdr
	}
	nm := m.alikeFor(n)
	if n > len(nm.buf) {
		nm.Free()
		panic(fmt.Sprintf("mbuf: prepend of %d exceeds cluster size", n))
	}
	nm.off = len(nm.buf) - n
	nm.length = n
	nm.next = m
	hdr := nm.buf[nm.off:]
	for i := range hdr {
		hdr[i] = 0
	}
	return nm, hdr
}

// Adj trims data from the chain like 4.4BSD's m_adj: positive n removes
// from the front, negative n removes from the back. Trimming more than
// the chain holds empties it.
func (m *Mbuf) Adj(n int) {
	if n >= 0 {
		for cur := m; cur != nil && n > 0; cur = cur.next {
			if cur.length >= n {
				cur.off += n
				cur.length -= n
				return
			}
			n -= cur.length
			cur.off += cur.length
			cur.length = 0
		}
		return
	}
	n = -n
	total := m.PktLen()
	if n >= total {
		n = total
	}
	keep := total - n
	for cur := m; cur != nil; cur = cur.next {
		if keep >= cur.length {
			keep -= cur.length
			continue
		}
		cur.length = keep
		keep = 0
	}
}

// Pullup rearranges the chain so its first n bytes are contiguous in the
// head mbuf, like m_pullup — decoders need contiguous headers. It returns
// the new head, or an error if the chain is shorter than n or n exceeds a
// cluster.
func (m *Mbuf) Pullup(n int) (*Mbuf, error) {
	if n <= m.length {
		return m, nil
	}
	if n > m.PktLen() {
		//lint:ignore hotpathalloc pullup error path, never taken by well-formed traffic
		return m, fmt.Errorf("mbuf: pullup %d beyond packet length %d", n, m.PktLen())
	}
	if n > MCLBytes {
		//lint:ignore hotpathalloc pullup error path, never taken by well-formed traffic
		return m, fmt.Errorf("mbuf: pullup %d exceeds cluster size", n)
	}
	head := m.alikeFor(n)
	head.off = 0
	// Gather n bytes from the chain into the new head.
	rest := m
	for head.length < n && rest != nil {
		take := n - head.length
		if take > rest.length {
			take = rest.length
		}
		copy(head.buf[head.length:], rest.Bytes()[:take])
		head.length += take
		rest.off += take
		rest.length -= take
		if rest.length == 0 {
			rest = rest.Free()
		}
	}
	head.next = rest
	return head, nil
}

// Split divides the chain at byte offset n: the receiver keeps the first
// n bytes, and the remainder is returned as a new chain (nil if n >= the
// packet length). Storage is copied only at the split point's partial
// mbuf.
func (m *Mbuf) Split(n int) *Mbuf {
	if n >= m.PktLen() {
		return nil
	}
	cur := m
	for cur != nil && n > cur.length {
		n -= cur.length
		cur = cur.next
	}
	if cur == nil {
		return nil
	}
	if n == cur.length {
		tail := cur.next
		cur.next = nil
		return tail
	}
	// Partial mbuf: copy the tail part into a fresh mbuf.
	tailLen := cur.length - n
	nm := m.alikeFor(tailLen)
	nm.off = 0
	copy(nm.buf, cur.Bytes()[n:])
	nm.length = tailLen
	nm.next = cur.next
	cur.length = n
	cur.next = nil
	return nm
}

// CopyOut copies length bytes starting at offset off out of the chain
// into dst, returning the number of bytes copied (short if the chain
// ends).
func (m *Mbuf) CopyOut(off int, dst []byte) int {
	copied := 0
	for cur := m; cur != nil && copied < len(dst); cur = cur.next {
		if off >= cur.length {
			off -= cur.length
			continue
		}
		n := copy(dst[copied:], cur.Bytes()[off:])
		copied += n
		off = 0
	}
	return copied
}

// Contiguous returns the chain's full contents as one slice, copying only
// if the chain has more than one mbuf.
func (m *Mbuf) Contiguous() []byte {
	if m.next == nil {
		return m.Bytes()
	}
	//lint:ignore hotpathalloc multi-buffer chains only; single-buffer frames return the existing window without copying
	out := make([]byte, m.PktLen())
	m.CopyOut(0, out)
	return out
}

// Chunks returns the chain's data as a slice of per-mbuf slices, for
// chained checksumming without copies.
func (m *Mbuf) Chunks() [][]byte {
	var out [][]byte
	for cur := m; cur != nil; cur = cur.next {
		if cur.length > 0 {
			out = append(out, cur.Bytes())
		}
	}
	return out
}

// FromBytes builds a chain from this shard holding a copy of data, using
// clusters for bulk.
//
//ldlp:hotpath
func (ps *PoolShard) FromBytes(data []byte) *Mbuf {
	var m *Mbuf
	if len(data) > MSize/2 {
		m = ps.get(true)
	} else {
		m = ps.get(false)
	}
	m.off = len(m.buf) / 4
	if len(data) <= m.trailing() {
		copy(m.buf[m.off:], data)
		m.length = len(data)
		return m
	}
	m.length = 0
	return m.Append(data)
}

// FromBytes builds a chain from the default pool holding a copy of data.
func FromBytes(data []byte) *Mbuf { return defaultPool.shards[0].FromBytes(data) }

// NumBufs counts the mbufs in the chain.
func (m *Mbuf) NumBufs() int {
	n := 0
	for cur := m; cur != nil; cur = cur.next {
		n++
	}
	return n
}
