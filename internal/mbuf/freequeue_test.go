package mbuf

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestFreeQueueBalancesAndReturnsToOwner checks the batched cross-shard
// free path: buffers parked in a FreeQueue are counted only at flush,
// land on their owning shard's freelist, and the pool balances exactly
// afterwards.
func TestFreeQueueBalancesAndReturnsToOwner(t *testing.T) {
	pool := NewPool(2)
	a, b := pool.Shard(0), pool.Shard(1)
	var q FreeQueue

	var ms []*Mbuf
	for i := 0; i < 5; i++ {
		ms = append(ms, a.Get(), b.GetCluster())
	}
	for _, m := range ms {
		q.Free(m)
	}
	// Nothing flushed yet: the 10 buffers are parked, so they still count
	// as in use even though they are marked freed.
	if st := pool.Stats(); st.InUse != 10 {
		t.Fatalf("parked buffers should count as in use: %+v", st)
	}
	q.Flush()
	st := pool.Stats()
	if st.InUse != 0 || st.Clusters != 0 {
		t.Fatalf("pool unbalanced after flush: %+v", st)
	}
	if len(a.small) != 5 || len(b.clust) != 5 {
		t.Fatalf("freelists a.small=%d b.clust=%d, want 5,5", len(a.small), len(b.clust))
	}
}

// TestFreeQueueAutoFlushAndDoubleFree checks that a full batch flushes by
// itself and that a parked buffer still trips the double-free panic.
func TestFreeQueueAutoFlushAndDoubleFree(t *testing.T) {
	pool := NewPool(1)
	ps := pool.Shard(0)
	var q FreeQueue
	for i := 0; i < freeQueueBatch; i++ {
		q.Free(ps.Get())
	}
	// The batch boundary flushed without an explicit Flush call.
	if st := pool.Stats(); st.InUse != 0 {
		t.Fatalf("full batch did not auto-flush: %+v", st)
	}

	m := ps.Get()
	q.Free(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double free of a parked mbuf did not panic")
		}
		q.Flush()
	}()
	m.Free()
}

// TestFreeQueueChainAndOwnerOverflow frees a chain spanning shards and
// more distinct owners than the queue has slots; the extras take the
// direct path and everything still balances.
func TestFreeQueueChainAndOwnerOverflow(t *testing.T) {
	pool := NewPool(freeQueueOwners + 4)
	var q FreeQueue
	var head, tail *Mbuf
	for i := 0; i < pool.NumShards(); i++ {
		m := pool.Shard(i).Get()
		if head == nil {
			head, tail = m, m
		} else {
			tail.next = m
			tail = m
		}
	}
	q.FreeChain(head)
	q.Flush()
	if st := pool.Stats(); st.InUse != 0 {
		t.Fatalf("pool unbalanced after chain free: %+v", st)
	}
}

// TestFreeQueueFlushSpillDoesNotAllocate pins the worst case of the
// batched free path: the owner's freelist is already at shardFreeCap,
// so every buffer in the flushed batch diverts to the overflow tier.
// That divert used to build a `spill []*Mbuf` with append — a heap
// allocation per flush, on a path Free reaches every freeQueueBatch
// buffers — until the interprocedural hotpathalloc walk flagged it.
// The spill set is bounded by the batch, so a fixed array suffices;
// this test fails if the allocation ever comes back.
func TestFreeQueueFlushSpillDoesNotAllocate(t *testing.T) {
	pool := NewPool(1)
	ps := pool.Shard(0)
	// Draw every buffer up front (all fresh: the freelist is empty), then
	// free all but one batch so the freelist sits exactly at its cap.
	ms := make([]*Mbuf, shardFreeCap+freeQueueBatch)
	for i := range ms {
		ms[i] = ps.Get()
	}
	for _, m := range ms[freeQueueBatch:] {
		m.Free()
	}
	if len(ps.small) != shardFreeCap {
		t.Fatalf("freelist not at cap: %d", len(ps.small))
	}
	batch := ms[:freeQueueBatch]
	var q FreeQueue
	allocs := testing.AllocsPerRun(100, func() {
		// The last Free auto-flushes; with the freelist full, all
		// freeQueueBatch buffers take the spill path to the overflow pool.
		for _, m := range batch {
			q.Free(m)
		}
		// White-box reset so the next run can park the same buffers again
		// (the overflow pool holding stale duplicates is harmless here).
		for _, m := range batch {
			m.freed = false
		}
	})
	if allocs >= 1 {
		t.Fatalf("spill flush allocated %.1f times per batch; the overflow hand-off must stay allocation-free", allocs)
	}
}

// TestShardedPoolBeatsGlobalMutexAt4Workers is the regression guard for
// the BENCH_2.json scaling anomaly: the sharded pool's per-op atomic
// counter updates made it slower than the old global-mutex allocator at
// workers=4. With accounting folded into the freelist critical section
// the sharded pool must win (or at worst tie within noise) — it does the
// same two lock RMWs per op but on four private locks instead of one
// shared one.
func TestShardedPoolBeatsGlobalMutexAt4Workers(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short runs")
	}
	const (
		workers = 4
		iters   = 50000
		tries   = 5
	)
	// The property under test is contention behaviour: four workers on
	// four cores serialize on the legacy mutex while sharded workers never
	// meet. Timesliced onto fewer cores there is no contention to measure,
	// only scheduler noise, and the comparison flaps either way.
	if runtime.NumCPU() < workers {
		t.Skipf("need %d CPUs for a real contention comparison, have %d", workers, runtime.NumCPU())
	}
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)

	runWorkers := func(loop func(w, n int)) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				loop(w, iters)
			}(w)
		}
		wg.Wait()
		return time.Since(start)
	}

	legacy := &legacyPool{}
	legacyRun := func() time.Duration {
		return runWorkers(func(w, n int) {
			var batch [benchBatch]*Mbuf
			for i := 0; i < n; i += benchBatch {
				for j := range batch {
					batch[j] = legacy.get()
				}
				for j := range batch {
					legacy.put(batch[j])
				}
			}
		})
	}
	sharded := NewPool(workers)
	shardedRun := func() time.Duration {
		return runWorkers(func(w, n int) {
			ps := sharded.Shard(w)
			var batch [benchBatch]*Mbuf
			for i := 0; i < n; i += benchBatch {
				for j := range batch {
					batch[j] = ps.Get()
				}
				for j := range batch {
					batch[j].Free()
				}
			}
		})
	}

	// Interleave the two configurations and compare best-of-N: the min is
	// robust against scheduler noise on loaded CI machines, and a single
	// win is enough to prove the sharded fast path is not paying the old
	// per-op atomic tax.
	best := func(run func() time.Duration) time.Duration {
		m := run()
		for i := 1; i < tries; i++ {
			if d := run(); d < m {
				m = d
			}
		}
		return m
	}
	legacyBest := best(legacyRun)
	shardedBest := best(shardedRun)
	t.Logf("workers=%d: global-mutex %v, sharded %v", workers, legacyBest, shardedBest)
	// Allow a hair of noise headroom, but a return to the old regression
	// (sharded ~29%% slower) fails loudly.
	if float64(shardedBest) > float64(legacyBest)*1.10 {
		t.Fatalf("sharded pool regressed vs global mutex at workers=%d: sharded %v > global %v",
			workers, shardedBest, legacyBest)
	}
	if st := sharded.Stats(); st.InUse != 0 {
		t.Fatalf("sharded pool leaked: %+v", st)
	}
}

// BenchmarkPoolCrossShardFree measures retiring frames another shard
// allocated — the receive path's pattern — via direct Free (bouncing the
// owner's lock per buffer) versus a FreeQueue (one lock per batch).
func BenchmarkPoolCrossShardFree(b *testing.B) {
	for _, mode := range []string{"direct", "queued"} {
		b.Run(mode, func(b *testing.B) {
			pool := NewPool(2)
			owner := pool.Shard(0)
			var q FreeQueue
			var batch [benchBatch]*Mbuf
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += benchBatch {
				for j := range batch {
					batch[j] = owner.Get()
				}
				for j := range batch {
					if mode == "direct" {
						batch[j].Free()
					} else {
						q.Free(batch[j])
					}
				}
			}
			b.StopTimer()
			q.Flush()
			if st := pool.Stats(); st.InUse != 0 {
				b.Fatalf("pool leaked: %+v", st)
			}
		})
	}
}
