package mbuf

import (
	"bytes"
	"sync"
	"testing"
)

// TestPoolConcurrentStress hammers one pool from many goroutines — each
// with its own shard handle, as the netstack arranges — doing the full
// life cycle the receive path does: allocate, build a chain, split it,
// hand one half to another goroutine (cross-shard free, like a frame
// crossing the wire), free the rest locally. Run under -race this checks
// the TryLock fast path, the sync.Pool overflow tier, and the atomic
// counters; afterwards the pool must balance exactly.
func TestPoolConcurrentStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	pool := NewPool(4) // fewer shards than workers: handles alias
	// handoff carries chains between goroutines so frees routinely hit a
	// shard the freeing goroutine never allocated from.
	handoff := make(chan *Mbuf, workers*4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps := pool.Shard(w)
			payload := make([]byte, 300) // spans a small mbuf into a second
			for i := range payload {
				payload[i] = byte(w)
			}
			for i := 0; i < rounds; i++ {
				m := ps.FromBytes(payload)
				m, hdr := m.Prepend(14)
				hdr[0] = byte(i)
				tail := m.Split(100)
				select {
				case handoff <- tail:
				default:
					tail.FreeChain()
				}
				m.FreeChain()
				select {
				case other := <-handoff:
					other.FreeChain()
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	close(handoff)
	for m := range handoff {
		m.FreeChain()
	}
	st := pool.Stats()
	if st.InUse != 0 {
		t.Fatalf("pool unbalanced after stress: %+v", st)
	}
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d", st.Allocs, st.Frees)
	}
	if st.Clusters != 0 {
		t.Fatalf("cluster count nonzero after stress: %+v", st)
	}
}

// TestCrossShardFreeReturnsToOwner checks the §3.2 hand-off property the
// netstack relies on: an mbuf freed by a different goroutine (different
// shard handle) returns to the shard that allocated it, so per-shard
// accounting stays balanced shard by shard, not just pool-wide.
func TestCrossShardFreeReturnsToOwner(t *testing.T) {
	pool := NewPool(2)
	a, b := pool.Shard(0), pool.Shard(1)
	m := a.Get()
	if m.owner != a {
		t.Fatal("owner not the allocating shard")
	}
	// Free from "b's side": ownership, not the caller, decides the shard.
	m.Free()
	shardAllocs := func(ps *PoolShard) int64 { return ps.fastAllocs + ps.slowAllocs.Load() }
	shardFrees := func(ps *PoolShard) int64 { return ps.fastFrees + ps.slowFrees.Load() }
	if got := shardAllocs(a) - shardFrees(a); got != 0 {
		t.Fatalf("shard 0 unbalanced: %d in use", got)
	}
	if got := shardAllocs(b) + shardFrees(b); got != 0 {
		t.Fatalf("shard 1 saw traffic it never had: allocs+frees=%d", got)
	}
	// The freed buffer must be on a's freelist, not b's.
	if len(a.small) != 1 || len(b.small) != 0 {
		t.Fatalf("freelist lengths a=%d b=%d, want 1,0", len(a.small), len(b.small))
	}
}

// FuzzChainOps drives a chain through a byte-coded sequence of the
// operations the stack performs — append, prepend, trim, pull-up, split —
// mirroring every step against a plain []byte model, and checks the chain
// content matches the model and the pool balances when everything is
// freed. Seeds cover each opcode; the fuzzer explores interleavings.
func FuzzChainOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 4, 2, 3, 3, 8, 4, 5})
	f.Add([]byte{0, 200, 0, 200, 4, 100, 2, 50, 1, 14})
	f.Add([]byte{1, 20, 2, 200, 0, 33, 3, 1, 3, 0})
	f.Fuzz(func(t *testing.T, program []byte) {
		pool := NewPool(2)
		ps := pool.Shard(0)
		m := ps.FromBytes([]byte{0xaa})
		model := []byte{0xaa}
		var extras []*Mbuf
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%5, int(program[i+1])
			switch op {
			case 0: // append arg bytes
				data := make([]byte, arg)
				for j := range data {
					data[j] = byte(i + j)
				}
				m = m.Append(data)
				model = append(model, data...)
			case 1: // prepend arg bytes (bounded to a cluster)
				n := arg % MCLBytes
				var hdr []byte
				m, hdr = m.Prepend(n)
				for j := range hdr {
					hdr[j] = byte(j)
				}
				model = append(append(make([]byte, 0, n+len(model)), hdr...), model...)
			case 2: // trim: front if arg even, back if odd
				n := arg % (len(model) + 1)
				if arg%2 == 0 {
					m.Adj(n)
					model = model[n:]
				} else {
					m.Adj(-n)
					model = model[:len(model)-n]
				}
			case 3: // pull-up
				n := arg % (len(model) + 1)
				var err error
				m, err = m.Pullup(n)
				if err != nil {
					t.Fatalf("pullup %d of %d failed: %v", n, len(model), err)
				}
			case 4: // split; keep the tail around, free it at the end
				n := arg % (len(model) + 1)
				tail := m.Split(n)
				if tail != nil {
					extras = append(extras, tail)
					model = model[:n]
				}
			}
			if m.PktLen() != len(model) {
				t.Fatalf("op %d: PktLen %d != model %d", op, m.PktLen(), len(model))
			}
		}
		if !bytes.Equal(m.Contiguous(), model) {
			t.Fatalf("content diverged from model:\n chain %x\n model %x", m.Contiguous(), model)
		}
		m.FreeChain()
		for _, e := range extras {
			e.FreeChain()
		}
		if st := pool.Stats(); st.InUse != 0 {
			t.Fatalf("pool unbalanced after program: %+v", st)
		}
	})
}
