package traffic

import (
	"math"
	"testing"
)

func TestHurstPoissonNearHalf(t *testing.T) {
	// A Poisson process has independent increments: H ≈ 0.5.
	arrivals := Take(NewPoisson(2000, 64, 11), 120, 0)
	h, err := EstimateHurst(arrivals, 120, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.35 || h > 0.65 {
		t.Errorf("Poisson H = %.3f, want ≈0.5", h)
	}
}

func TestHurstSelfSimilarHigh(t *testing.T) {
	// The aggregated Pareto ON/OFF model should show long-range
	// dependence: the Bellcore traces measure H ≈ 0.7–0.9.
	arrivals := Take(NewSelfSimilar(DefaultSelfSimilar(2000, 11)), 120, 0)
	h, err := EstimateHurst(arrivals, 120, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.65 {
		t.Errorf("self-similar H = %.3f, want > 0.65 (Bellcore-like)", h)
	}
}

func TestHurstSeparatesTheModels(t *testing.T) {
	// Whatever the absolute estimates, the self-similar source must
	// measure clearly burstier than Poisson at the same rate and seed.
	for _, seed := range []int64{1, 2, 3} {
		pois := Take(NewPoisson(1500, 64, seed), 100, 0)
		self := Take(NewSelfSimilar(DefaultSelfSimilar(1500, seed)), 100, 0)
		hp, err1 := EstimateHurst(pois, 100, 0.1)
		hs, err2 := EstimateHurst(self, 100, 0.1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !(hs > hp+0.1) {
			t.Errorf("seed %d: H(self)=%.3f not clearly above H(poisson)=%.3f", seed, hs, hp)
		}
	}
}

func TestHurstErrors(t *testing.T) {
	arrivals := Take(NewPoisson(100, 64, 1), 1, 0)
	if _, err := EstimateHurst(arrivals, 1, 0.5); err == nil {
		t.Error("too few bins should error")
	}
	if _, err := EstimateHurst(arrivals, 0, 0.1); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := EstimateHurst(arrivals, 1, 0); err == nil {
		t.Error("zero bin should error")
	}
}

func TestHurstDeterministicProcess(t *testing.T) {
	// A perfectly regular process has (near-)zero aggregated variance at
	// every level that divides evenly; the estimator must not blow up.
	arrivals := Take(NewDeterministic(1000, 64), 60, 0)
	h, err := EstimateHurst(arrivals, 60, 0.1)
	if err != nil {
		// Acceptable: zero variance at all levels yields an error rather
		// than a bogus estimate.
		return
	}
	if math.IsNaN(h) || h < 0 || h > 1 {
		t.Errorf("deterministic H = %v, want within [0,1]", h)
	}
}

func TestSlopeFit(t *testing.T) {
	// y = 3 - 0.6x exactly.
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 - 0.6*v
	}
	if got := slope(x, y); math.Abs(got+0.6) > 1e-12 {
		t.Errorf("slope = %v, want -0.6", got)
	}
	if got := slope([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Errorf("degenerate slope = %v, want 0", got)
	}
}
