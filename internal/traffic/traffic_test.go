package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPoissonRateConverges(t *testing.T) {
	src := NewPoisson(5000, 552, 1)
	arrivals := Take(src, 10, 0)
	rate := float64(len(arrivals)) / 10
	if math.Abs(rate-5000) > 250 {
		t.Errorf("observed rate %v, want ≈5000", rate)
	}
	for _, a := range arrivals {
		if a.Size != 552 {
			t.Fatalf("size %d, want 552", a.Size)
		}
	}
}

func TestPoissonInterarrivalStats(t *testing.T) {
	// Exponential interarrivals: mean ≈ stddev (CV ≈ 1).
	src := NewPoisson(1000, 100, 2)
	arrivals := Take(src, 20, 0)
	var prev float64
	var sum, sumsq float64
	for _, a := range arrivals {
		d := a.Time - prev
		prev = a.Time
		sum += d
		sumsq += d * d
	}
	n := float64(len(arrivals))
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	cv := sd / mean
	if cv < 0.9 || cv > 1.1 {
		t.Errorf("interarrival CV = %v, want ≈1 (exponential)", cv)
	}
}

func TestMonotoneTimesQuick(t *testing.T) {
	f := func(seed int64, kind uint8) bool {
		var src Source
		switch kind % 3 {
		case 0:
			src = NewPoisson(2000, 552, seed)
		case 1:
			src = NewDeterministic(2000, 552)
		default:
			src = NewSelfSimilar(DefaultSelfSimilar(2000, seed))
		}
		prev := -1.0
		for i := 0; i < 2000; i++ {
			a, ok := src.Next()
			if !ok || a.Time < prev || a.Size <= 0 {
				return false
			}
			prev = a.Time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicSpacing(t *testing.T) {
	src := NewDeterministic(100, 64)
	a1, _ := src.Next()
	a2, _ := src.Next()
	if d := a2.Time - a1.Time; math.Abs(d-0.01) > 1e-12 {
		t.Errorf("spacing = %v, want 0.01", d)
	}
}

func TestTraceReplaySortsAndEnds(t *testing.T) {
	tr := NewTrace([]Arrival{{Time: 2, Size: 10}, {Time: 1, Size: 20}})
	a1, ok1 := tr.Next()
	a2, ok2 := tr.Next()
	_, ok3 := tr.Next()
	if !ok1 || !ok2 || ok3 {
		t.Fatal("trace should yield exactly two arrivals")
	}
	if a1.Time != 1 || a2.Time != 2 {
		t.Errorf("trace not sorted: %v then %v", a1, a2)
	}
	tr.Reset()
	if a, _ := tr.Next(); a.Time != 1 {
		t.Error("reset did not rewind")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestSelfSimilarRateApproximate(t *testing.T) {
	// The generative model should land within a factor of ~1.5 of the
	// target rate over a long window (heavy tails converge slowly; that is
	// the point of the model).
	src := NewSelfSimilar(DefaultSelfSimilar(3000, 3))
	arrivals := Take(src, 50, 0)
	rate := float64(len(arrivals)) / 50
	if rate < 1500 || rate > 4800 {
		t.Errorf("observed rate %v, want within ~60%% of 3000", rate)
	}
}

func TestSelfSimilarIsBurstierThanPoisson(t *testing.T) {
	// Index of dispersion of counts (IDC) over 100 ms bins: ≈1 for
	// Poisson, substantially larger for the self-similar aggregate. This
	// is the property that makes Figure 7's workload interesting.
	idc := func(arrivals []Arrival, horizon float64) float64 {
		const bin = 0.1
		counts := make([]float64, int(horizon/bin)+1)
		for _, a := range arrivals {
			counts[int(a.Time/bin)]++
		}
		var mean, varsum float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			varsum += (c - mean) * (c - mean)
		}
		return varsum / float64(len(counts)) / mean
	}
	horizon := 60.0
	pois := idc(Take(NewPoisson(2000, 552, 4), horizon, 0), horizon)
	self := idc(Take(NewSelfSimilar(DefaultSelfSimilar(2000, 4)), horizon, 0), horizon)
	if pois > 2 {
		t.Errorf("poisson IDC = %v, want ≈1", pois)
	}
	if self < 3*pois {
		t.Errorf("self-similar IDC = %v vs poisson %v; want ≫", self, pois)
	}
}

func TestSelfSimilarSizesFromMix(t *testing.T) {
	src := NewSelfSimilar(DefaultSelfSimilar(2000, 5))
	valid := map[int]bool{}
	for _, b := range EthernetSizeMix {
		valid[b.Size] = true
	}
	seen := map[int]int{}
	for i := 0; i < 5000; i++ {
		a, _ := src.Next()
		if !valid[a.Size] {
			t.Fatalf("size %d not in the Ethernet mix", a.Size)
		}
		seen[a.Size]++
	}
	if len(seen) < 4 {
		t.Errorf("only %d distinct sizes drawn, want the mix exercised", len(seen))
	}
	// Fixed-size override.
	fixed := DefaultSelfSimilar(2000, 5)
	fixed.FixedSize = 552
	src2 := NewSelfSimilar(fixed)
	for i := 0; i < 100; i++ {
		if a, _ := src2.Next(); a.Size != 552 {
			t.Fatal("FixedSize not honored")
		}
	}
}

func TestEthernetSizeMixSumsToOne(t *testing.T) {
	var sum float64
	for _, b := range EthernetSizeMix {
		sum += b.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("size mix weights sum to %v, want 1", sum)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		orig := Take(NewPoisson(1000, 552, seed), 1, 0)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, orig); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(orig) {
			return false
		}
		for i := range got {
			if got[i].Size != orig[i].Size || math.Abs(got[i].Time-orig[i].Time) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"abc def\n",
		"1.0 -5\n",
		"-1.0 64\n",
		"1.0\n",
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadTrace(%q) should fail", bad)
		}
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# Bellcore-format trace\n\n0.5 64\n1.5 1518\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Size != 64 || got[1].Size != 1518 {
		t.Errorf("parsed %v", got)
	}
}

func TestSynthesizeHorizonAndDeterminism(t *testing.T) {
	a := Synthesize(1000, 10, 9)
	b := Synthesize(1000, 10, 9)
	if len(a) == 0 {
		t.Fatal("empty synthesis")
	}
	if len(a) != len(b) {
		t.Errorf("synthesis not deterministic: %d vs %d arrivals", len(a), len(b))
	}
	for _, x := range a {
		if x.Time > 10 {
			t.Fatalf("arrival at %v beyond horizon", x.Time)
		}
	}
}

func TestTakeBounds(t *testing.T) {
	src := NewDeterministic(1000, 64)
	// Horizon 0.1005 avoids the float-accumulation boundary at exactly 0.1.
	if got := len(Take(src, 0.1005, 0)); got != 100 {
		t.Errorf("horizon take = %d, want 100", got)
	}
	src2 := NewDeterministic(1000, 64)
	if got := len(Take(src2, 10, 5)); got != 5 {
		t.Errorf("count take = %d, want 5", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPoisson(0, 552, 1) },
		func() { NewPoisson(100, 0, 1) },
		func() { NewDeterministic(-1, 64) },
		func() { NewSelfSimilar(SelfSimilarConfig{}) },
		func() {
			cfg := DefaultSelfSimilar(100, 1)
			cfg.AlphaOn = 0.9
			NewSelfSimilar(cfg)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor args should panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkPoissonNext(b *testing.B) {
	src := NewPoisson(10000, 552, 1)
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}

func BenchmarkSelfSimilarNext(b *testing.B) {
	src := NewSelfSimilar(DefaultSelfSimilar(10000, 1))
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}

func TestScaleRate(t *testing.T) {
	in := []Arrival{{Time: 1, Size: 64}, {Time: 3, Size: 128}}
	out := ScaleRate(in, 2)
	if out[0].Time != 0.5 || out[1].Time != 1.5 || out[1].Size != 128 {
		t.Errorf("scaled = %v", out)
	}
	if in[0].Time != 1 {
		t.Error("input mutated")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive factor should panic")
		}
	}()
	ScaleRate(in, 0)
}

func TestWindow(t *testing.T) {
	in := []Arrival{{Time: 1, Size: 1}, {Time: 2, Size: 2}, {Time: 5, Size: 3}}
	out := Window(in, 2, 5)
	if len(out) != 1 || out[0].Time != 0 || out[0].Size != 2 {
		t.Errorf("window = %v", out)
	}
	if len(Window(in, 10, 20)) != 0 {
		t.Error("empty window should be empty")
	}
}
