// Package traffic generates the arrival processes the paper's evaluation
// uses: Poisson arrivals of fixed-size messages (Figures 5 and 6) and
// self-similar Ethernet traffic in the style of the Bellcore traces of
// Leland et al. (Figure 7).
//
// The original pOct89 trace is not redistributable here, so the
// self-similar source implements the standard generative model for that
// data — an aggregate of many ON/OFF sources with heavy-tailed
// (Pareto-distributed) ON and OFF periods — which is exactly the
// construction Willinger et al. showed explains the Bellcore traces'
// burstiness. A Bellcore-shaped trace file format (one "timestamp size"
// pair per line) is supported for replay, and Synthesize writes such a
// file from the generative model.
package traffic

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
)

// Arrival is one message arrival.
type Arrival struct {
	// Time is the arrival time in seconds from the start of the run.
	Time float64
	// Size is the message size in bytes.
	Size int
}

// Source produces a monotonically non-decreasing arrival stream. Next
// reports ok=false when the source is exhausted (trace sources end;
// generative sources never do).
type Source interface {
	Next() (Arrival, bool)
}

// Poisson is a Poisson arrival process of fixed-size messages — the §4
// workload ("a stream of 552-byte messages from a Poisson traffic
// source").
type Poisson struct {
	rate float64
	size int
	rng  *rand.Rand
	now  float64
}

// NewPoisson creates a Poisson source with the given mean arrival rate
// (messages/second) and message size.
func NewPoisson(rate float64, size int, seed int64) *Poisson {
	if rate <= 0 || size <= 0 {
		panic(fmt.Sprintf("traffic: invalid poisson rate %v / size %d", rate, size))
	}
	return &Poisson{rate: rate, size: size, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next arrival; a Poisson source never ends.
func (p *Poisson) Next() (Arrival, bool) {
	p.now += p.rng.ExpFloat64() / p.rate
	return Arrival{Time: p.now, Size: p.size}, true
}

// Deterministic emits fixed-size messages at a fixed interval, useful for
// tests and worst-case latency probes.
type Deterministic struct {
	interval float64
	size     int
	now      float64
}

// NewDeterministic creates a source emitting size-byte messages every
// 1/rate seconds.
func NewDeterministic(rate float64, size int) *Deterministic {
	if rate <= 0 || size <= 0 {
		panic(fmt.Sprintf("traffic: invalid deterministic rate %v / size %d", rate, size))
	}
	return &Deterministic{interval: 1 / rate, size: size}
}

// Next returns the next arrival; never ends.
func (d *Deterministic) Next() (Arrival, bool) {
	d.now += d.interval
	return Arrival{Time: d.now, Size: d.size}, true
}

// Trace replays a recorded arrival sequence.
type Trace struct {
	arrivals []Arrival
	i        int
}

// NewTrace wraps a slice of arrivals (which must be time-sorted; NewTrace
// sorts defensively).
func NewTrace(arrivals []Arrival) *Trace {
	a := make([]Arrival, len(arrivals))
	copy(a, arrivals)
	sort.Slice(a, func(i, j int) bool { return a[i].Time < a[j].Time })
	return &Trace{arrivals: a}
}

// Next returns the next recorded arrival, ok=false at end of trace.
func (t *Trace) Next() (Arrival, bool) {
	if t.i >= len(t.arrivals) {
		return Arrival{}, false
	}
	a := t.arrivals[t.i]
	t.i++
	return a, true
}

// Len reports the number of arrivals in the trace.
func (t *Trace) Len() int { return len(t.arrivals) }

// Reset rewinds the trace to the beginning.
func (t *Trace) Reset() { t.i = 0 }

// EthernetSizeMix is an empirical packet-size mix shaped like the Bellcore
// LAN traces: dominated by minimum-size packets and ~552-byte data
// segments with a bulk-transfer tail at the 1518-byte Ethernet maximum.
var EthernetSizeMix = []struct {
	Size   int
	Weight float64
}{
	{64, 0.40},
	{128, 0.10},
	{256, 0.05},
	{552, 0.20},
	{1072, 0.08},
	{1518, 0.17},
}

// SelfSimilarConfig parameterizes the aggregated Pareto ON/OFF source.
type SelfSimilarConfig struct {
	// Sources is the number of independent ON/OFF sources aggregated
	// (Willinger et al. use hundreds; 64 is plenty for 1000 s of traffic).
	Sources int
	// AlphaOn/AlphaOff are the Pareto shape parameters of the ON and OFF
	// period distributions. Values in (1,2) yield long-range dependence;
	// 1.4 corresponds to a Hurst parameter of about 0.8, matching the
	// Bellcore estimates.
	AlphaOn, AlphaOff float64
	// MeanOn/MeanOff are the mean ON and OFF period durations in seconds.
	MeanOn, MeanOff float64
	// Rate is the target aggregate arrival rate in packets/second; the
	// per-source in-burst emission interval is derived from it.
	Rate float64
	// FixedSize forces every packet to this size; 0 draws from
	// EthernetSizeMix.
	FixedSize int
	Seed      int64
}

// DefaultSelfSimilar returns a configuration shaped like the October 1989
// Bellcore trace at the given aggregate packet rate.
func DefaultSelfSimilar(rate float64, seed int64) SelfSimilarConfig {
	return SelfSimilarConfig{
		Sources:  64,
		AlphaOn:  1.4,
		AlphaOff: 1.2,
		MeanOn:   0.2,
		MeanOff:  1.0,
		Rate:     rate,
		Seed:     seed,
	}
}

// SelfSimilar aggregates heavy-tailed ON/OFF sources.
type SelfSimilar struct {
	cfg      SelfSimilarConfig
	rng      *rand.Rand
	interval float64 // per-source packet spacing while ON
	h        srcHeap
}

type srcState struct {
	nextPkt float64 // next packet emission time
	onEnd   float64 // end of the current ON period
}

type srcHeap []*srcState

func (h srcHeap) Len() int            { return len(h) }
func (h srcHeap) Less(i, j int) bool  { return h[i].nextPkt < h[j].nextPkt }
func (h srcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *srcHeap) Push(x interface{}) { *h = append(*h, x.(*srcState)) }
func (h *srcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewSelfSimilar builds the aggregate source.
func NewSelfSimilar(cfg SelfSimilarConfig) *SelfSimilar {
	if cfg.Sources <= 0 || cfg.Rate <= 0 {
		panic(fmt.Sprintf("traffic: invalid self-similar config %+v", cfg))
	}
	if cfg.AlphaOn <= 1 || cfg.AlphaOff <= 1 {
		panic("traffic: pareto shapes must exceed 1 (finite mean)")
	}
	s := &SelfSimilar{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	// A source is ON for MeanOn/(MeanOn+MeanOff) of the time; while ON it
	// emits a packet every `interval`. Solve for the target aggregate rate.
	duty := cfg.MeanOn / (cfg.MeanOn + cfg.MeanOff)
	s.interval = float64(cfg.Sources) * duty / cfg.Rate
	for i := 0; i < cfg.Sources; i++ {
		st := &srcState{}
		// Start each source at a random point of its cycle so the
		// aggregate does not begin synchronized.
		start := s.rng.Float64() * (cfg.MeanOn + cfg.MeanOff)
		s.startOn(st, start)
		s.h = append(s.h, st)
	}
	heap.Init(&s.h)
	return s
}

// pareto samples a Pareto-distributed value with shape alpha and the scale
// chosen so the mean is `mean`.
func (s *SelfSimilar) pareto(alpha, mean float64) float64 {
	xm := mean * (alpha - 1) / alpha
	return xm * math.Pow(s.rng.Float64(), -1/alpha)
}

func (s *SelfSimilar) startOn(st *srcState, now float64) {
	on := s.pareto(s.cfg.AlphaOn, s.cfg.MeanOn)
	st.onEnd = now + on
	st.nextPkt = now + s.interval*s.rng.Float64() // phase jitter
}

// Next returns the next aggregate arrival; never ends.
func (s *SelfSimilar) Next() (Arrival, bool) {
	for {
		st := s.h[0]
		if st.nextPkt < st.onEnd {
			t := st.nextPkt
			st.nextPkt += s.interval
			heap.Fix(&s.h, 0)
			return Arrival{Time: t, Size: s.pickSize()}, true
		}
		// ON period over: sleep an OFF period, then start a new ON burst.
		off := s.pareto(s.cfg.AlphaOff, s.cfg.MeanOff)
		s.startOn(st, st.onEnd+off)
		heap.Fix(&s.h, 0)
	}
}

func (s *SelfSimilar) pickSize() int {
	if s.cfg.FixedSize > 0 {
		return s.cfg.FixedSize
	}
	x := s.rng.Float64()
	for _, b := range EthernetSizeMix {
		if x < b.Weight {
			return b.Size
		}
		x -= b.Weight
	}
	return EthernetSizeMix[len(EthernetSizeMix)-1].Size
}

// Take drains up to `horizon` seconds (or n arrivals, whichever first;
// n<=0 means unbounded) from a source into a slice.
func Take(src Source, horizon float64, n int) []Arrival {
	var out []Arrival
	for {
		a, ok := src.Next()
		if !ok || a.Time > horizon {
			return out
		}
		out = append(out, a)
		if n > 0 && len(out) >= n {
			return out
		}
	}
}

// WriteTrace writes arrivals in the Bellcore trace format: one
// "<timestamp> <size>" pair per line, timestamp in seconds.
func WriteTrace(w io.Writer, arrivals []Arrival) error {
	bw := bufio.NewWriter(w)
	for _, a := range arrivals {
		if _, err := fmt.Fprintf(bw, "%.6f %d\n", a.Time, a.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a Bellcore-format trace.
func ReadTrace(r io.Reader) ([]Arrival, error) {
	var out []Arrival
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || text[0] == '#' {
			continue
		}
		var t float64
		var size int
		if _, err := fmt.Sscanf(text, "%f %d", &t, &size); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d %q: %w", line, text, err)
		}
		if size <= 0 || t < 0 || math.IsNaN(t) {
			return nil, fmt.Errorf("traffic: trace line %d has invalid values (t=%v size=%d)", line, t, size)
		}
		out = append(out, Arrival{Time: t, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Synthesize generates `seconds` of Bellcore-shaped self-similar traffic
// at the given aggregate rate — the stand-in for "the first 1000 seconds
// of the October 5, 1989 trace".
func Synthesize(rate float64, seconds float64, seed int64) []Arrival {
	src := NewSelfSimilar(DefaultSelfSimilar(rate, seed))
	return Take(src, seconds, 0)
}

// ScaleRate compresses or stretches an arrival sequence in time by the
// given factor (>1 means a proportionally higher arrival rate). Figure 7
// varies the CPU clock because the Bellcore trace's rate is fixed;
// scaling the trace is the dual experiment — at matched utilization the
// two are equivalent up to the clock ratio.
func ScaleRate(arrivals []Arrival, factor float64) []Arrival {
	if factor <= 0 {
		panic(fmt.Sprintf("traffic: non-positive rate factor %v", factor))
	}
	out := make([]Arrival, len(arrivals))
	for i, a := range arrivals {
		out[i] = Arrival{Time: a.Time / factor, Size: a.Size}
	}
	return out
}

// Window extracts the arrivals with t0 <= Time < t1, re-based to start at
// zero.
func Window(arrivals []Arrival, t0, t1 float64) []Arrival {
	var out []Arrival
	for _, a := range arrivals {
		if a.Time >= t0 && a.Time < t1 {
			out = append(out, Arrival{Time: a.Time - t0, Size: a.Size})
		}
	}
	return out
}
