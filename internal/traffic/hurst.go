package traffic

import (
	"fmt"
	"math"
)

// Hurst estimation by the variance-time method, the analysis Leland et
// al. apply to the Bellcore traces: aggregate the packet-count process at
// increasing block sizes m and fit the slope β of
//
//	log Var(X^(m)) = const + β log m
//
// For a self-similar process Var(X^(m)) ∝ m^(2H-2), so H = 1 + β/2.
// Poisson counts give H ≈ 0.5; the Bellcore traces measure H ≈ 0.7–0.9.
// This is both a user-facing analysis tool and the regression test that
// keeps the generative model honest.

// EstimateHurst computes H for an arrival stream over [0, horizon) using
// base bins of binSize seconds and octave aggregation levels. It returns
// an error if there is too little data to fit (fewer than 3 usable
// aggregation levels).
func EstimateHurst(arrivals []Arrival, horizon, binSize float64) (float64, error) {
	if binSize <= 0 || horizon <= 0 {
		return 0, fmt.Errorf("traffic: invalid hurst window (horizon %v, bin %v)", horizon, binSize)
	}
	nbins := int(horizon / binSize)
	if nbins < 16 {
		return 0, fmt.Errorf("traffic: need >= 16 bins, have %d", nbins)
	}
	counts := make([]float64, nbins)
	for _, a := range arrivals {
		if a.Time >= horizon {
			break
		}
		i := int(a.Time / binSize)
		if i >= 0 && i < nbins {
			counts[i]++
		}
	}

	var logM, logV []float64
	for m := 1; nbins/m >= 8; m *= 2 {
		v := aggregatedVariance(counts, m)
		if v <= 0 {
			continue
		}
		logM = append(logM, math.Log(float64(m)))
		logV = append(logV, math.Log(v))
	}
	if len(logM) < 3 {
		return 0, fmt.Errorf("traffic: only %d usable aggregation levels", len(logM))
	}
	beta := slope(logM, logV)
	h := 1 + beta/2
	// Clamp to the meaningful range; estimation noise can nudge outside.
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h, nil
}

// aggregatedVariance computes the variance of the m-aggregated,
// mean-normalized count process.
func aggregatedVariance(counts []float64, m int) float64 {
	n := len(counts) / m
	agg := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < m; j++ {
			s += counts[i*m+j]
		}
		agg[i] = s / float64(m)
	}
	var mean float64
	for _, v := range agg {
		mean += v
	}
	mean /= float64(n)
	var varsum float64
	for _, v := range agg {
		d := v - mean
		varsum += d * d
	}
	return varsum / float64(n)
}

// slope is the least-squares slope of y on x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
