package httpd

import (
	"fmt"
	"strings"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
)

var (
	ipSrv = layers.IPAddr{10, 11, 0, 1}
	ipCli = layers.IPAddr{10, 11, 0, 2}
)

func site(path string) (string, bool) {
	pages := map[string]string{
		"/":      "home sweet home",
		"/paper": "Speeding up Protocols for Small Messages",
	}
	body, ok := pages[path]
	return body, ok
}

func deploy(t *testing.T, d core.Discipline) (*netstack.Net, *Server, *Client) {
	t.Helper()
	mbuf.ResetPool()
	n := netstack.NewNet()
	hs := n.AddHost("www", ipSrv, netstack.DefaultOptions(d))
	hc := n.AddHost("browser", ipCli, netstack.DefaultOptions(d))
	srv, err := NewServer(hs, 80, site)
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(hc, hs, 80)
	n.RunUntilIdle()
	if !cli.Connected() {
		t.Fatal("handshake failed")
	}
	return n, srv, cli
}

func pump(n *netstack.Net, srv *Server, clients ...*Client) {
	for i := 0; i < 8; i++ {
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		for _, c := range clients {
			c.Poll()
		}
	}
	n.Tick(0.01) // flush delayed ACKs
}

func TestGetRoundTrip(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		n, srv, cli := deploy(t, d)
		cli.Get("/paper")
		pump(n, srv, cli)
		r, ok := cli.Next()
		if !ok {
			t.Fatalf("[%v] no response", d)
		}
		if r.Status != "200 OK" || !strings.Contains(r.Body, "Small Messages") {
			t.Errorf("[%v] response = %+v", d, r)
		}
	}
}

func Test404(t *testing.T) {
	n, srv, cli := deploy(t, core.Conventional)
	cli.Get("/missing")
	pump(n, srv, cli)
	r, ok := cli.Next()
	if !ok || r.Status != "404 Not Found" || r.Body != "" {
		t.Errorf("response = %+v ok=%v", r, ok)
	}
	if srv.NotFound != 1 {
		t.Errorf("NotFound = %d", srv.NotFound)
	}
}

func TestBadRequest(t *testing.T) {
	n, srv, cli := deploy(t, core.Conventional)
	cli.sock.Send([]byte("BREW /coffee\r\n"))
	pump(n, srv, cli)
	r, ok := cli.Next()
	if !ok || r.Status != "400 Bad Request" {
		t.Errorf("response = %+v ok=%v", r, ok)
	}
	if srv.BadRequests != 1 {
		t.Errorf("BadRequests = %d", srv.BadRequests)
	}
}

func TestPipelinedRequestsOneSegment(t *testing.T) {
	// Several requests coalesced into one segment must each be answered,
	// in order.
	n, srv, cli := deploy(t, core.LDLP)
	cli.sock.Send([]byte("GET /\r\nGET /paper\r\nGET /\r\n"))
	pump(n, srv, cli)
	var bodies []string
	for {
		r, ok := cli.Next()
		if !ok {
			break
		}
		bodies = append(bodies, r.Body)
	}
	if len(bodies) != 3 {
		t.Fatalf("responses = %d, want 3", len(bodies))
	}
	if bodies[0] != "home sweet home" || !strings.Contains(bodies[1], "Speeding") || bodies[2] != bodies[0] {
		t.Errorf("bodies = %q", bodies)
	}
}

func TestRequestSplitAcrossSegments(t *testing.T) {
	// A request arriving byte-dribbled across many segments must still be
	// framed correctly — the case naive per-segment parsing gets wrong.
	n, srv, cli := deploy(t, core.Conventional)
	for _, chunk := range []string{"GE", "T /pa", "per", "\r", "\n"} {
		cli.sock.Send([]byte(chunk))
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
	}
	pump(n, srv, cli)
	r, ok := cli.Next()
	if !ok || r.Status != "200 OK" {
		t.Fatalf("dribbled request: %+v ok=%v", r, ok)
	}
	if srv.Requests != 1 {
		t.Errorf("server saw %d requests, want 1", srv.Requests)
	}
}

func TestManyClientsBurst(t *testing.T) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	hs := n.AddHost("www", ipSrv, netstack.DefaultOptions(core.LDLP))
	srv, err := NewServer(hs, 80, site)
	if err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for i := 0; i < 12; i++ {
		hc := n.AddHost("c", layers.IPAddr{10, 11, 1, byte(i + 1)}, netstack.DefaultOptions(core.LDLP))
		clients = append(clients, Dial(hc, hs, 80))
	}
	n.RunUntilIdle()
	srv.Poll() // accept all
	for _, c := range clients {
		c.Get("/")
		c.Get("/paper")
	}
	pump(n, srv, clients...)
	pump(n, srv, clients...)
	for i, c := range clients {
		got := 0
		for {
			if _, ok := c.Next(); !ok {
				break
			}
			got++
		}
		if got != 2 {
			t.Errorf("client %d received %d responses, want 2", i, got)
		}
	}
	if srv.Responses != 24 {
		t.Errorf("server responses = %d, want 24", srv.Responses)
	}
}

func TestTakeLine(t *testing.T) {
	for _, tc := range []struct {
		in, line, rest string
		ok             bool
	}{
		{"abc\r\ndef", "abc", "def", true},
		{"abc\ndef", "abc", "def", true},
		{"abc", "", "abc", false},
		{"\r\nx", "", "x", true},
	} {
		line, rest, ok := takeLine([]byte(tc.in))
		if ok != tc.ok || line != tc.line || string(rest) != tc.rest {
			t.Errorf("takeLine(%q) = %q/%q/%v", tc.in, line, rest, ok)
		}
	}
}

func TestParseResponseIncomplete(t *testing.T) {
	// Partial responses must not be consumed.
	full := "200 OK\r\nLength: 5\r\nhello"
	for cut := 0; cut < len(full); cut++ {
		if _, _, ok := parseResponse([]byte(full[:cut])); ok {
			t.Errorf("parse succeeded on %d-byte prefix", cut)
		}
	}
	r, rest, ok := parseResponse([]byte(full + "tail"))
	if !ok || r.Body != "hello" || string(rest) != "tail" {
		t.Errorf("full parse: %+v %q %v", r, rest, ok)
	}
}

func BenchmarkRequestResponse(b *testing.B) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	hs := n.AddHost("www", ipSrv, netstack.DefaultOptions(core.Conventional))
	hc := n.AddHost("c", ipCli, netstack.DefaultOptions(core.Conventional))
	srv, _ := NewServer(hs, 80, site)
	cli := Dial(hc, hs, 80)
	n.RunUntilIdle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.Get("/")
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		cli.Poll()
		if _, ok := cli.Next(); !ok {
			b.Fatal(fmt.Sprintf("no response at i=%d", i))
		}
	}
}
