// Package httpd is a tiny HTTP/0.9-flavoured request/response server and
// client over the netstack's TCP — the paper's conclusion names WWW
// servers ("where the data transfer unit is 512 bytes or less in most
// circumstances") as a surprise beneficiary of LDLP. Requests are one
// CRLF-terminated line ("GET /path"); responses are a status line, a
// Length: header and the body.
//
// Unlike a toy that assumes one request per TCP segment, this package
// frames the byte stream properly: requests split across segments (or
// several requests coalesced into one) are handled by per-connection
// buffers.
package httpd

import (
	"fmt"
	"strconv"
	"strings"

	"ldlp/internal/netstack"
)

// Handler produces a response body for a path; ok=false yields a 404.
type Handler func(path string) (body string, ok bool)

// Server serves requests on an accepting listener.
type Server struct {
	listener *netstack.TCPListener
	handler  Handler
	conns    []*serverConn

	// Requests/Responses/NotFound/BadRequests count traffic.
	Requests, Responses, NotFound, BadRequests int64
}

type serverConn struct {
	sock *netstack.TCPSock
	buf  []byte
}

// NewServer starts listening on the host's port with the given handler.
func NewServer(h *netstack.Host, port uint16, handler Handler) (*Server, error) {
	l, err := h.ListenTCP(port)
	if err != nil {
		return nil, err
	}
	return &Server{listener: l, handler: handler}, nil
}

// Poll accepts new connections and serves complete requests. Call after
// pumping the network.
func (s *Server) Poll() {
	for {
		sock := s.listener.Accept()
		if sock == nil {
			break
		}
		s.conns = append(s.conns, &serverConn{sock: sock})
	}
	tmp := make([]byte, 4096)
	for _, c := range s.conns {
		for {
			n := c.sock.Recv(tmp)
			if n == 0 {
				break
			}
			c.buf = append(c.buf, tmp[:n]...)
		}
		for {
			line, rest, ok := takeLine(c.buf)
			if !ok {
				break
			}
			c.buf = rest
			s.serve(c, line)
		}
	}
}

// takeLine splits one CRLF (or bare LF) terminated line off buf.
func takeLine(buf []byte) (line string, rest []byte, ok bool) {
	for i, b := range buf {
		if b == '\n' {
			end := i
			if end > 0 && buf[end-1] == '\r' {
				end--
			}
			return string(buf[:end]), buf[i+1:], true
		}
	}
	return "", buf, false
}

func (s *Server) serve(c *serverConn, line string) {
	s.Requests++
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "GET" {
		s.BadRequests++
		c.sock.Send([]byte("400 Bad Request\r\nLength: 0\r\n"))
		return
	}
	body, ok := s.handler(fields[1])
	if !ok {
		s.NotFound++
		c.sock.Send([]byte("404 Not Found\r\nLength: 0\r\n"))
		return
	}
	s.Responses++
	c.sock.Send([]byte(fmt.Sprintf("200 OK\r\nLength: %d\r\n%s", len(body), body)))
}

// Client issues sequential GETs over one connection.
type Client struct {
	sock *netstack.TCPSock
	buf  []byte

	// Done responses are queued here in request order.
	responses []Response
}

// Response is one parsed response.
type Response struct {
	Status string
	Body   string
}

// Dial connects a client to the server.
func Dial(h *netstack.Host, server *netstack.Host, port uint16) *Client {
	return &Client{sock: h.DialTCP(server.IP(), port)}
}

// Connected reports whether the TCP handshake has completed.
func (c *Client) Connected() bool { return c.sock.Established() }

// Get sends one request (responses arrive as the network is pumped).
func (c *Client) Get(path string) {
	c.sock.Send([]byte("GET " + path + "\r\n"))
}

// Poll consumes arrived bytes and parses complete responses.
func (c *Client) Poll() {
	tmp := make([]byte, 4096)
	for {
		n := c.sock.Recv(tmp)
		if n == 0 {
			break
		}
		c.buf = append(c.buf, tmp[:n]...)
	}
	for {
		resp, rest, ok := parseResponse(c.buf)
		if !ok {
			break
		}
		c.buf = rest
		c.responses = append(c.responses, resp)
	}
}

// Next pops the next complete response.
func (c *Client) Next() (Response, bool) {
	if len(c.responses) == 0 {
		return Response{}, false
	}
	r := c.responses[0]
	c.responses = c.responses[1:]
	return r, true
}

// parseResponse parses "STATUS\r\nLength: N\r\n<N body bytes>".
func parseResponse(buf []byte) (Response, []byte, bool) {
	status, rest, ok := takeLine(buf)
	if !ok {
		return Response{}, buf, false
	}
	lenLine, rest2, ok := takeLine(rest)
	if !ok || !strings.HasPrefix(lenLine, "Length: ") {
		return Response{}, buf, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lenLine, "Length: "))
	if err != nil || n < 0 || len(rest2) < n {
		return Response{}, buf, false
	}
	return Response{Status: status, Body: string(rest2[:n])}, rest2[n:], true
}
