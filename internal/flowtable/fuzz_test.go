package flowtable

import (
	"bytes"
	"fmt"
	"testing"
)

// refCache is the executable spec the fuzzer holds Cache to: an
// ordered slice of entries with the same documented semantics (LRU
// newest-first with refresh-on-hit, FIFO newest-first without, random
// in slot order with an identical seeded xorshift64 victim stream).
// Structurally naive on purpose — every operation rebuilds order with
// slice surgery — so a shared bug with the real cache is unlikely.
type refCache struct {
	policy Policy
	cap    int
	keys   []uint64
	vals   []uint64
	rng    uint64

	hits, misses, evictions int64
	// victims tallies evicted keys: the fuzz contract includes WHICH
	// entries each policy sacrifices, not just how many.
	victims map[uint64]int
}

func newRefCache(capacity int, policy Policy, seed uint64) *refCache {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &refCache{policy: policy, cap: capacity, rng: seed, victims: map[uint64]int{}}
}

func (r *refCache) xorshift() uint64 {
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return r.rng
}

func (r *refCache) find(k uint64) int {
	for i, kk := range r.keys {
		if kk == k {
			return i
		}
	}
	return -1
}

func (r *refCache) moveToFront(i int) {
	k, v := r.keys[i], r.vals[i]
	r.keys = append(r.keys[:i], r.keys[i+1:]...)
	r.vals = append(r.vals[:i], r.vals[i+1:]...)
	r.keys = append([]uint64{k}, r.keys...)
	r.vals = append([]uint64{v}, r.vals...)
}

func (r *refCache) lookup(k uint64) (uint64, bool) {
	if i := r.find(k); i >= 0 {
		v := r.vals[i]
		if r.policy == PolicyLRU {
			r.moveToFront(i)
		}
		r.hits++
		return v, true
	}
	r.misses++
	return 0, false
}

func (r *refCache) insert(k, v uint64) {
	if i := r.find(k); i >= 0 {
		r.vals[i] = v
		if r.policy == PolicyLRU {
			r.moveToFront(i)
		}
		return
	}
	switch r.policy {
	case PolicyRandom:
		if len(r.keys) == r.cap {
			slot := int(r.xorshift() % uint64(r.cap))
			r.victims[r.keys[slot]]++
			r.evictions++
			r.keys[slot], r.vals[slot] = k, v
			return
		}
		r.keys = append(r.keys, k)
		r.vals = append(r.vals, v)
	default: // LRU, FIFO: front-insert, back-evict
		if len(r.keys) == r.cap {
			r.victims[r.keys[len(r.keys)-1]]++
			r.evictions++
			r.keys = r.keys[:len(r.keys)-1]
			r.vals = r.vals[:len(r.vals)-1]
		}
		r.keys = append([]uint64{k}, r.keys...)
		r.vals = append([]uint64{v}, r.vals...)
	}
}

func (r *refCache) invalidate(k uint64) {
	i := r.find(k)
	if i < 0 {
		return
	}
	if r.policy == PolicyRandom {
		last := len(r.keys) - 1
		r.keys[i], r.vals[i] = r.keys[last], r.vals[last]
		r.keys, r.vals = r.keys[:last], r.vals[:last]
		return
	}
	r.keys = append(r.keys[:i], r.keys[i+1:]...)
	r.vals = append(r.vals[:i], r.vals[i+1:]...)
}

// FuzzFlowTable drives the open-addressed Table against a plain map
// and the eviction Cache against refCache through the same op script,
// demanding byte-identical observable results: every lookup, the full
// surviving contents, hit/miss tallies, and — under the seeded
// policies — the exact eviction victim multiset.
func FuzzFlowTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x05, 0x02, 0x05, 0x01, 0x05})
	f.Add([]byte{0x83, 0x01, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03, 0x03, 0x01, 0x04, 0x01, 0x05, 0x01})
	f.Add([]byte{0x04, 0x02, 0x03, 0x10, 0x03, 0x11, 0x03, 0x12, 0x03, 0x13, 0x03, 0x14, 0x04, 0x10})
	f.Add(bytes.Repeat([]byte{0x00, 0x07, 0x03, 0x07}, 64))
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) < 2 {
			return
		}
		// Header: capacity (1..8), adversarial-hash bit, policy, then
		// 2-byte ops over a deliberately small key space so collisions,
		// evictions and re-insertions happen constantly.
		capacity := int(script[0]&0x07) + 1
		hash := ident
		if script[0]&0x80 != 0 {
			hash = awfulHash
		}
		policy := Policy(script[1] % 3)
		const seed = 0xfeedface

		tab := New[uint64, uint64](0, hash)
		ref := map[uint64]uint64{}
		cache := NewCache[uint64, uint64](capacity, policy, seed)
		rc := newRefCache(capacity, policy, seed)

		ops := script[2:]
		for i := 0; i+1 < len(ops); i += 2 {
			op, key := ops[i]%6, uint64(ops[i+1]&0x1f)
			val := uint64(i)
			switch op {
			case 0: // table insert
				tab.Insert(key, val)
				ref[key] = val
			case 1: // table delete
				got := tab.Delete(key)
				_, want := ref[key]
				if got != want {
					t.Fatalf("op %d: Delete(%d) = %v, reference %v", i, key, got, want)
				}
				delete(ref, key)
			case 2: // table lookup
				gotV, gotOK := tab.Lookup(key)
				wantV, wantOK := ref[key]
				if gotOK != wantOK || gotV != wantV {
					t.Fatalf("op %d: Lookup(%d) = %d,%v; reference %d,%v", i, key, gotV, gotOK, wantV, wantOK)
				}
			case 3: // cache insert
				cache.Insert(key, val)
				rc.insert(key, val)
			case 4: // cache lookup
				gotV, gotOK := cache.Lookup(key)
				wantV, wantOK := rc.lookup(key)
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Fatalf("op %d: cache Lookup(%d) = %d,%v; reference %d,%v", i, key, gotV, gotOK, wantV, wantOK)
				}
			case 5: // cache invalidate
				cache.Invalidate(key)
				rc.invalidate(key)
			}
			// Per-op order equality is what pins the eviction victims:
			// a wrong victim shows up as a key-order divergence on the
			// very next comparison, before reinsertion could mask it.
			if got, want := fmt.Sprint(cache.Keys()), fmt.Sprint(rc.keys); got != want {
				t.Fatalf("op %d: cache keys %s != reference %s", i, got, want)
			}
		}

		// Table: full-content equivalence, both directions.
		if tab.Len() != len(ref) {
			t.Fatalf("table Len %d != reference %d", tab.Len(), len(ref))
		}
		seen := map[uint64]uint64{}
		tab.Range(func(k, v uint64) bool {
			if _, dup := seen[k]; dup {
				t.Fatalf("Range yielded key %d twice", k)
			}
			seen[k] = v
			return true
		})
		if fmt.Sprint(seen) != fmt.Sprint(ref) {
			t.Fatalf("table contents %v != reference %v", seen, ref)
		}

		// Cache: exact order, stats, and victim multiset.
		if got, want := fmt.Sprint(cache.Keys()), fmt.Sprint(rc.keys); got != want {
			t.Fatalf("cache keys %s != reference %s", got, want)
		}
		cs := cache.Stats()
		if cs.Hits != rc.hits || cs.Misses != rc.misses || cs.Evictions != rc.evictions {
			t.Fatalf("cache stats %+v != reference hits=%d misses=%d evictions=%d",
				cs, rc.hits, rc.misses, rc.evictions)
		}
	})
}
