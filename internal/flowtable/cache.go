package flowtable

// The recently-active flow cache sits in front of a Table and
// generalizes the paper's single-entry PCB cache (§2): Jain's
// DEC-TR-592 measured strong destination-address locality in real
// traffic and showed a handful of recently-used entries absorb most
// lookups — with the caveat that the eviction policy matters, which
// that report compares empirically (LRU vs FIFO vs random). The Cache
// keeps all three policies behind one type so the netstack can run the
// same comparison on its own traffic; policy choice never changes
// lookup results, only which entries stay warm.
//
// Capacity is deliberately tiny (default 8): the scan is a straight
// key-array walk that stays within one or two cache lines, which is
// the whole point — a hit never touches the Table at all.

// Policy selects the cache's eviction discipline.
type Policy uint8

const (
	// PolicyLRU evicts the least recently used entry (hits refresh).
	PolicyLRU Policy = iota
	// PolicyFIFO evicts the oldest insertion (hits do not refresh).
	PolicyFIFO
	// PolicyRandom evicts a uniformly random entry (seeded, so runs
	// replay deterministically).
	PolicyRandom
)

// Policies lists every eviction policy, for sweeps and tests.
func Policies() []Policy { return []Policy{PolicyLRU, PolicyFIFO, PolicyRandom} }

func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyFIFO:
		return "fifo"
	case PolicyRandom:
		return "random"
	default:
		return "unknown"
	}
}

// DefaultCacheSize is the capacity NewCache substitutes for n <= 0.
const DefaultCacheSize = 8

// Cache is a fixed-capacity recently-active-flow cache. Like Table it
// is single-writer, owned by one shard. Entries are kept in parallel
// key/value arrays; for LRU and FIFO the arrays are ordered
// newest-first (LRU refreshes on hit, FIFO does not — so its order is
// pure insertion age), for random they are unordered.
type Cache[K comparable, V any] struct {
	policy Policy
	keys   []K
	vals   []V
	used   int
	rng    uint64 // xorshift64 state, PolicyRandom victim picks

	hits      int64
	misses    int64
	evictions int64
}

// NewCache builds a cache of capacity n (DefaultCacheSize if n <= 0)
// with the given eviction policy. seed drives PolicyRandom's victim
// choice; a zero seed is replaced so the generator never sticks.
func NewCache[K comparable, V any](n int, policy Policy, seed uint64) *Cache[K, V] {
	if n <= 0 {
		n = DefaultCacheSize
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Cache[K, V]{
		policy: policy,
		keys:   make([]K, n),
		vals:   make([]V, n),
		rng:    seed,
	}
}

// Policy reports the cache's eviction policy.
func (c *Cache[K, V]) Policy() Policy { return c.policy }

// Cap reports the cache's capacity.
func (c *Cache[K, V]) Cap() int { return len(c.keys) }

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int { return c.used }

// Lookup scans for k. Under LRU a hit moves the entry to the front;
// FIFO and random leave order untouched.
//
//ldlp:hotpath
func (c *Cache[K, V]) Lookup(k K) (V, bool) {
	for i := 0; i < c.used; i++ {
		if c.keys[i] == k {
			v := c.vals[i]
			if c.policy == PolicyLRU && i > 0 {
				copy(c.keys[1:i+1], c.keys[:i])
				copy(c.vals[1:i+1], c.vals[:i])
				c.keys[0] = k
				c.vals[0] = v
			}
			c.hits++
			return v, true
		}
	}
	c.misses++
	var zero V
	return zero, false
}

// Insert adds k (or updates it in place), evicting per policy when
// full.
//
//ldlp:hotpath
func (c *Cache[K, V]) Insert(k K, v V) {
	for i := 0; i < c.used; i++ {
		if c.keys[i] == k {
			c.vals[i] = v
			if c.policy == PolicyLRU && i > 0 {
				copy(c.keys[1:i+1], c.keys[:i])
				copy(c.vals[1:i+1], c.vals[:i])
				c.keys[0] = k
				c.vals[0] = v
			}
			return
		}
	}
	switch c.policy {
	case PolicyRandom:
		slot := c.used
		if slot == len(c.keys) {
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			slot = int(c.rng % uint64(len(c.keys)))
			c.evictions++
		} else {
			c.used++
		}
		c.keys[slot] = k
		c.vals[slot] = v
	default: // LRU and FIFO both insert at the front, evicting the back
		n := c.used
		if n == len(c.keys) {
			n--
			c.evictions++
		} else {
			c.used++
		}
		copy(c.keys[1:n+1], c.keys[:n])
		copy(c.vals[1:n+1], c.vals[:n])
		c.keys[0] = k
		c.vals[0] = v
	}
}

// Invalidate removes k if cached (the teardown path: a dead PCB must
// not be served from the cache).
func (c *Cache[K, V]) Invalidate(k K) {
	for i := 0; i < c.used; i++ {
		if c.keys[i] != k {
			continue
		}
		var zeroK K
		var zeroV V
		switch c.policy {
		case PolicyRandom: // unordered: swap with last
			c.keys[i] = c.keys[c.used-1]
			c.vals[i] = c.vals[c.used-1]
		default: // ordered: compact, preserving recency/insertion order
			copy(c.keys[i:c.used-1], c.keys[i+1:c.used])
			copy(c.vals[i:c.used-1], c.vals[i+1:c.used])
		}
		c.used--
		c.keys[c.used] = zeroK
		c.vals[c.used] = zeroV
		return
	}
}

// Reset empties the cache (stats are kept; they are cumulative).
func (c *Cache[K, V]) Reset() {
	var zeroK K
	var zeroV V
	for i := 0; i < c.used; i++ {
		c.keys[i] = zeroK
		c.vals[i] = zeroV
	}
	c.used = 0
}

// Keys returns the cached keys in internal order (recency order for
// LRU, insertion order for FIFO, slot order for random). Allocates;
// for tests and diagnostics, not the hot path.
func (c *Cache[K, V]) Keys() []K {
	out := make([]K, c.used)
	copy(out, c.keys[:c.used])
	return out
}

// CacheStats is a quiescent snapshot of a cache's effectiveness.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats reports hit/miss/eviction tallies.
func (c *Cache[K, V]) Stats() CacheStats {
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// HitRate reports hits/(hits+misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}
