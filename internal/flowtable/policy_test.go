package flowtable

import (
	"math/rand"
	"testing"
)

// zipfTrace builds a skewed flow-reference trace the way DEC-TR-592
// characterizes real traffic: a small set of destinations absorbs most
// references (Zipf popularity), and references cluster in time (a
// packet train re-references flows seen moments ago). The temporal
// component matters for the policy comparison: on a pure
// independent-reference trace FIFO and random have provably equal hit
// ratios, and it is recency that separates them — exactly what the
// report observed on real traffic. Deterministic per seed.
func zipfTrace(seed int64, flows uint64, n int, s float64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, s, 1, flows-1)
	out := make([]uint64, n)
	var recent [8]uint64 // ring of recently referenced flows
	for i := range out {
		if i >= len(recent) && r.Float64() < 0.35 {
			// Packet-train re-reference: revisit a recent flow, biased
			// toward the most recent.
			back := 1 + r.Intn(len(recent))
			if r.Float64() < 0.5 {
				back = 1 + r.Intn(2)
			}
			out[i] = recent[(i-back)%len(recent)]
		} else {
			out[i] = z.Uint64()
		}
		recent[i%len(recent)] = out[i]
	}
	return out
}

// replay runs a trace through a cache of the given policy and reports
// the hit rate. Misses insert (the lookupPCB pattern: cache miss →
// table lookup → cache fill).
func replay(trace []uint64, policy Policy, cap int, seed uint64) float64 {
	c := NewCache[uint64, uint64](cap, policy, seed)
	for _, f := range trace {
		if _, ok := c.Lookup(f); !ok {
			c.Insert(f, f)
		}
	}
	return c.Stats().HitRate()
}

// TestEvictionPolicyOrdering replays Jain-style skewed traces through
// all three policies and asserts the ordering DEC-TR-592 measures on
// traffic with temporal locality: LRU ≥ FIFO ≥ random. Each seed is a
// distinct trace; the ordering must hold on every one, and the exact
// hit rates are deterministic per seed (asserted by replaying one).
func TestEvictionPolicyOrdering(t *testing.T) {
	const (
		flows    = 4096
		accesses = 200_000
		skew     = 1.2
		cacheCap = 16
	)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		trace := zipfTrace(seed, flows, accesses, skew)
		lru := replay(trace, PolicyLRU, cacheCap, 99)
		fifo := replay(trace, PolicyFIFO, cacheCap, 99)
		random := replay(trace, PolicyRandom, cacheCap, 99)
		t.Logf("seed %d: lru=%.4f fifo=%.4f random=%.4f", seed, lru, fifo, random)
		if lru < fifo {
			t.Errorf("seed %d: LRU (%.4f) < FIFO (%.4f) on skewed trace", seed, lru, fifo)
		}
		if fifo < random {
			t.Errorf("seed %d: FIFO (%.4f) < random (%.4f) on skewed trace", seed, fifo, random)
		}
		// A Zipf-skewed trace with a 16-entry cache should hit a lot
		// under LRU — locality is the whole premise.
		if lru < 0.5 {
			t.Errorf("seed %d: LRU hit rate %.4f implausibly low", seed, lru)
		}
		// Determinism: same trace, same cache seed, same answer.
		if again := replay(trace, PolicyRandom, cacheCap, 99); again != random {
			t.Errorf("seed %d: random policy replay diverged (%.6f vs %.6f)", seed, again, random)
		}
	}
}
