// Package flowtable is the connection-scale lookup substrate: an
// open-addressed hash table tuned for the per-shard flow state the
// netstack keeps (TCP PCBs keyed by 4-tuple, reassembly state keyed by
// IP ID), plus a small recently-active-flow cache in front of it
// (cache.go) whose eviction policy is pluggable.
//
// A Go map served the same role up to a few thousand flows, but §2 of
// the paper puts the PCB lookup squarely on the small-message fast
// path, and at a million concurrent flows a map lookup chases bucket
// pointers across several cache lines before it ever sees a key. The
// Table's layout is built around touching as few lines as possible:
//
//   - Slots are grouped 8 at a time. Each group owns an 8-byte control
//     word — one tag byte per slot, a truncated flow hash with the high
//     bit set (0x00 = empty, 0x01 = tombstone) — so a probe scans 8
//     candidate slots with byte compares in one cache line before any
//     key, value, or pointer is dereferenced. For the netstack's 8-byte
//     flow keys a group's key block is itself exactly one 64-byte line.
//   - Probing is linear over groups with bounded displacement: an
//     insert that cannot place within maxProbeGroups groups triggers a
//     grow instead of probing on, so lookups have a hard locality bound
//     regardless of load history.
//   - Growth is incremental. A grow allocates the larger array and
//     migrates a few groups per subsequent Insert; lookups and deletes
//     consult both arrays until the old one drains. No single operation
//     ever rehashes the whole table, so a resize never stalls the
//     owning shard mid-burst (the property a 1M-flow accept benchmark
//     leans on).
//
// Tables are single-writer by design: each netstack transport shard
// owns one, and the shardaffinity analyzer enforces that only the
// owning shard (or the pump at quiescence) touches it. Stats are plain
// fields under the same discipline; DepthHist exports the probe-depth
// distribution as a telemetry.HistSnapshot so it merges with the rest
// of the flight-recorder machinery.
package flowtable

import (
	"math/bits"

	"ldlp/internal/telemetry"
)

const (
	// groupSlots is the probe-group width: 8 tag bytes scanned as one
	// cache-line-resident control word.
	groupSlots = 8
	// minGroups is the smallest allocation (32 slots): tiny tables stay
	// tiny until load proves otherwise.
	minGroups = 4
	// maxProbeGroups bounds displacement: an insert that cannot place
	// within this many groups grows the table instead.
	maxProbeGroups = 8
	// maxLoadNum/maxLoadDen is the occupancy (full + tombstone slots)
	// past which an insert triggers a grow — 13/16, swiss-table-ish.
	maxLoadNum, maxLoadDen = 13, 16
	// migrateGroups is how many old-table groups one Insert migrates
	// while a grow is in flight: large enough that the old array drains
	// long before the new one fills, small enough to never stall.
	migrateGroups = 8

	ctrlEmpty     = 0x00
	ctrlTombstone = 0x01

	// depthBuckets sizes the power-of-two probe-depth tally; depth
	// beyond 2^14 groups is impossible under the displacement bound but
	// the mask keeps the increment branch-free anyway.
	depthBuckets = 16
)

// Table is an open-addressed hash table from K to V. The zero value is
// not ready; use New. Not safe for concurrent use: one owner writes,
// and readers must hold the same quiescence the owner's other state
// needs (this is exactly the netstack shard discipline).
type Table[K comparable, V any] struct {
	hashFn func(K) uint64

	cur arr[K, V]
	// old is the pre-grow array while an incremental migration is in
	// flight (groups == 0 otherwise); migrated is the next old group to
	// move.
	old      arr[K, V]
	migrated int

	// Lookup stats: single-writer plain fields, read at quiescence.
	lookups  int64
	hits     int64
	probeSum int64
	probeMax int64
	depth    [depthBuckets]int64
}

// arr is one allocation generation: parallel tag/key/value arrays,
// groups a power of two.
type arr[K comparable, V any] struct {
	tags   []uint8
	keys   []K
	vals   []V
	groups int // power of two; 0 = absent
	live   int // full slots
	filled int // full + tombstone slots (load-factor input)
}

// New builds a table pre-sized for hint entries (0 for the minimum).
// hash maps a key to a well-mixed 64-bit value; the low bits pick the
// group and the top bits form the tag, so both ends must be mixed
// (pack the key and run it through a finalizer like Mix64).
func New[K comparable, V any](hint int, hash func(K) uint64) *Table[K, V] {
	t := &Table[K, V]{hashFn: hash}
	t.cur = newArr[K, V](groupsFor(hint))
	return t
}

// groupsFor returns the power-of-two group count whose capacity keeps
// n entries under the load bound.
func groupsFor(n int) int {
	g := minGroups
	for g*groupSlots*maxLoadNum < n*maxLoadDen {
		g <<= 1
	}
	return g
}

func newArr[K comparable, V any](groups int) arr[K, V] {
	n := groups * groupSlots
	return arr[K, V]{
		tags:   make([]uint8, n),
		keys:   make([]K, n),
		vals:   make([]V, n),
		groups: groups,
	}
}

// tagOf forms a slot tag from the hash's top 7 bits; the high bit keeps
// it distinct from ctrlEmpty/ctrlTombstone.
func tagOf(h uint64) uint8 { return uint8(h>>57) | 0x80 }

// Len reports live entries.
func (t *Table[K, V]) Len() int { return t.cur.live + t.old.live }

// Lookup finds k. Read-only — it never migrates, so it is safe from
// the owning shard's hot path at a fixed cost bound.
//
//ldlp:hotpath
func (t *Table[K, V]) Lookup(k K) (V, bool) {
	t.lookups++
	h := t.hashFn(k)
	v, ok, probes := t.cur.find(h, k)
	if !ok && t.old.groups != 0 {
		var p int
		v, ok, p = t.old.find(h, k)
		probes += p
	}
	t.probeSum += int64(probes)
	if int64(probes) > t.probeMax {
		t.probeMax = int64(probes)
	}
	t.depth[bits.Len64(uint64(probes))&(depthBuckets-1)]++
	if ok {
		t.hits++
	}
	return v, ok
}

// find probes for k in one array. probes counts groups touched.
//
//ldlp:hotpath
func (a *arr[K, V]) find(h uint64, k K) (V, bool, int) {
	var zero V
	if a.groups == 0 {
		return zero, false, 0
	}
	mask := uint64(a.groups - 1)
	tag := tagOf(h)
	g := h & mask
	for p := 0; p < a.groups; p++ {
		base := int((g+uint64(p))&mask) * groupSlots
		hasEmpty := false
		for i := base; i < base+groupSlots; i++ {
			c := a.tags[i]
			if c == tag && a.keys[i] == k {
				return a.vals[i], true, p + 1
			}
			if c == ctrlEmpty {
				hasEmpty = true
			}
		}
		if hasEmpty {
			// An empty slot in the probe sequence proves k was never
			// displaced past this group.
			return zero, false, p + 1
		}
	}
	return zero, false, a.groups
}

// Insert adds or updates k. Amortized O(1): it may advance an
// in-flight migration by a bounded number of groups and may start a
// grow, but never rehashes the whole table in one call (allocation
// happens in the cold grow path, not here).
//
//ldlp:hotpath
func (t *Table[K, V]) Insert(k K, v V) {
	if t.old.groups != 0 {
		t.migrateSome()
	}
	h := t.hashFn(k)
	// A key still parked in the old array is updated in place; it will
	// migrate with its group.
	if t.old.groups != 0 && t.old.update(h, k, v) {
		return
	}
	if !t.cur.insert(h, k, v, maxProbeGroups) {
		t.grow()
		if !t.cur.insert(h, k, v, t.cur.groups) {
			panic("flowtable: insert failed after grow")
		}
	}
	if t.cur.filled*maxLoadDen >= t.cur.groups*groupSlots*maxLoadNum {
		t.grow()
	}
}

// update overwrites an existing key's value, reporting whether it was
// present.
func (a *arr[K, V]) update(h uint64, k K, v V) bool {
	if a.groups == 0 {
		return false
	}
	mask := uint64(a.groups - 1)
	tag := tagOf(h)
	g := h & mask
	for p := 0; p < a.groups; p++ {
		base := int((g+uint64(p))&mask) * groupSlots
		hasEmpty := false
		for i := base; i < base+groupSlots; i++ {
			c := a.tags[i]
			if c == tag && a.keys[i] == k {
				a.vals[i] = v
				return true
			}
			if c == ctrlEmpty {
				hasEmpty = true
			}
		}
		if hasEmpty {
			return false
		}
	}
	return false
}

// insert places k within the displacement bound, updating in place if
// the key exists. Returns false when no slot was found within bound
// (caller grows and retries).
//
//ldlp:hotpath
func (a *arr[K, V]) insert(h uint64, k K, v V, bound int) bool {
	mask := uint64(a.groups - 1)
	tag := tagOf(h)
	g := h & mask
	free := -1
	if bound > a.groups {
		bound = a.groups
	}
	for p := 0; p < bound; p++ {
		base := int((g+uint64(p))&mask) * groupSlots
		hasEmpty := false
		for i := base; i < base+groupSlots; i++ {
			switch c := a.tags[i]; {
			case c == tag && a.keys[i] == k:
				a.vals[i] = v
				return true
			case c == ctrlEmpty:
				hasEmpty = true
				if free < 0 {
					free = i
				}
			case c == ctrlTombstone:
				if free < 0 {
					free = i
				}
			}
		}
		if hasEmpty {
			break // key provably absent; place at the first free slot seen
		}
	}
	if free < 0 {
		return false
	}
	if a.tags[free] == ctrlEmpty {
		a.filled++
	}
	a.tags[free] = tag
	a.keys[free] = k
	a.vals[free] = v
	a.live++
	return true
}

// Delete removes k, reporting whether it was present. Deletes never
// migrate (so they are legal while a Range walks the table).
func (t *Table[K, V]) Delete(k K) bool {
	h := t.hashFn(k)
	if t.cur.del(h, k) {
		return true
	}
	return t.old.groups != 0 && t.old.del(h, k)
}

func (a *arr[K, V]) del(h uint64, k K) bool {
	if a.groups == 0 {
		return false
	}
	mask := uint64(a.groups - 1)
	tag := tagOf(h)
	g := h & mask
	for p := 0; p < a.groups; p++ {
		base := int((g+uint64(p))&mask) * groupSlots
		hasEmpty := false
		for i := base; i < base+groupSlots; i++ {
			c := a.tags[i]
			if c == tag && a.keys[i] == k {
				var zeroK K
				var zeroV V
				a.tags[i] = ctrlTombstone
				a.keys[i] = zeroK
				a.vals[i] = zeroV
				a.live--
				return true
			}
			if c == ctrlEmpty {
				hasEmpty = true
			}
		}
		if hasEmpty {
			return false
		}
	}
	return false
}

// grow starts (or, if one is already in flight, force-finishes then
// starts) an incremental migration into an array sized for twice the
// live population. The allocation happens here, off the tagged fast
// paths: a declared cold step, amortized O(1) over insertions.
//
//ldlp:coldpath
func (t *Table[K, V]) grow() {
	if t.old.groups != 0 {
		t.finishMigration()
	}
	g := groupsFor(t.cur.live * 2)
	if g < t.cur.groups {
		g = t.cur.groups // never shrink mid-flight; tombstone purge only
	}
	t.old = t.cur
	t.migrated = 0
	t.cur = newArr[K, V](g)
}

// migrateSome moves up to migrateGroups groups from old into cur.
func (t *Table[K, V]) migrateSome() {
	end := t.migrated + migrateGroups
	if end > t.old.groups {
		end = t.old.groups
	}
	t.migrateRange(t.migrated, end)
	t.migrated = end
	if t.migrated >= t.old.groups {
		t.old = arr[K, V]{}
		t.migrated = 0
	}
}

// finishMigration drains the old array completely (the rare
// grow-during-grow fallback and the pre-Range normalizer for callers
// that want single-array iteration; normal operation never needs it).
func (t *Table[K, V]) finishMigration() {
	if t.old.groups == 0 {
		return
	}
	t.migrateRange(t.migrated, t.old.groups)
	t.old = arr[K, V]{}
	t.migrated = 0
}

func (t *Table[K, V]) migrateRange(from, to int) {
	for g := from; g < to; g++ {
		base := g * groupSlots
		for i := base; i < base+groupSlots; i++ {
			if t.old.tags[i] < 0x80 {
				continue
			}
			k := t.old.keys[i]
			if !t.cur.insert(t.hashFn(k), k, t.old.vals[i], t.cur.groups) {
				panic("flowtable: migration target full")
			}
			t.old.tags[i] = ctrlTombstone
			t.old.live--
		}
	}
}

// Range calls fn for every live entry (old array first, then current),
// stopping early if fn returns false. fn may Delete any entry —
// including the one it was called with — but must not Insert; the walk
// is over a snapshot of slot positions, and inserts could rehash
// entries across the cursor.
func (t *Table[K, V]) Range(fn func(K, V) bool) {
	if t.old.groups != 0 {
		if !t.old.rangeArr(fn) {
			return
		}
	}
	t.cur.rangeArr(fn)
}

func (a *arr[K, V]) rangeArr(fn func(K, V) bool) bool {
	for i := range a.tags {
		if a.tags[i] < 0x80 {
			continue
		}
		if !fn(a.keys[i], a.vals[i]) {
			return false
		}
	}
	return true
}

// Stats is a quiescent snapshot of the table's shape and lookup
// behaviour.
type Stats struct {
	Live      int   `json:"live"`
	Capacity  int   `json:"capacity"`
	Migrating bool  `json:"migrating"`
	Lookups   int64 `json:"lookups"`
	Hits      int64 `json:"hits"`
	ProbeMax  int64 `json:"probeMax"`
}

// Stats reports the table's current shape and lookup tallies.
func (t *Table[K, V]) Stats() Stats {
	return Stats{
		Live:      t.Len(),
		Capacity:  t.cur.groups * groupSlots,
		Migrating: t.old.groups != 0,
		Lookups:   t.lookups,
		Hits:      t.hits,
		ProbeMax:  t.probeMax,
	}
}

// DepthHist exports the probe-depth distribution (groups touched per
// Lookup) as a telemetry histogram snapshot, mergeable across shards
// with the standard machinery; quantiles come from
// telemetry.HistSnapshot.Quantile.
func (t *Table[K, V]) DepthHist() telemetry.HistSnapshot {
	var s telemetry.HistSnapshot
	for i, n := range t.depth {
		s.Buckets[i] = n
	}
	s.Count = t.lookups
	s.Sum = t.probeSum
	s.Max = t.probeMax
	return s
}

// Mix64 is the SplitMix64 finalizer: the recommended way to turn a
// packed fixed-width key into the well-mixed hash New requires.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
