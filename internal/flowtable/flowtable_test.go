package flowtable

import (
	"fmt"
	"testing"
)

func ident(k uint64) uint64 { return Mix64(k) }

// awfulHash collapses every key into four groups, forcing maximal
// collision pressure: displacement-bounded probing and grow-on-probe
// must still keep every key findable.
func awfulHash(k uint64) uint64 { return (k % 4) * 8 }

func TestTableBasic(t *testing.T) {
	tab := New[uint64, int](0, ident)
	if _, ok := tab.Lookup(1); ok {
		t.Fatal("lookup in empty table hit")
	}
	for i := uint64(0); i < 100; i++ {
		tab.Insert(i, int(i)*10)
	}
	if got := tab.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := tab.Lookup(i)
		if !ok || v != int(i)*10 {
			t.Fatalf("Lookup(%d) = %d,%v; want %d,true", i, v, ok, i*10)
		}
	}
	// Update in place.
	tab.Insert(7, 777)
	if v, _ := tab.Lookup(7); v != 777 {
		t.Fatalf("after update Lookup(7) = %d, want 777", v)
	}
	if got := tab.Len(); got != 100 {
		t.Fatalf("update changed Len to %d", got)
	}
	// Delete half.
	for i := uint64(0); i < 100; i += 2 {
		if !tab.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tab.Delete(2) {
		t.Fatal("double Delete reported present")
	}
	if got := tab.Len(); got != 50 {
		t.Fatalf("Len after deletes = %d, want 50", got)
	}
	for i := uint64(0); i < 100; i++ {
		_, ok := tab.Lookup(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Lookup(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestTableGrowthKeepsEverything(t *testing.T) {
	const n = 200_000
	tab := New[uint64, uint64](0, ident)
	for i := uint64(0); i < n; i++ {
		tab.Insert(i, i^0xabcdef)
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tab.Lookup(i)
		if !ok || v != i^0xabcdef {
			t.Fatalf("Lookup(%d) = %d,%v after growth", i, v, ok)
		}
	}
	st := tab.Stats()
	if st.Lookups < n || st.Hits < n {
		t.Fatalf("stats did not count lookups: %+v", st)
	}
	hist := tab.DepthHist()
	if hist.Count != st.Lookups || hist.Max != st.ProbeMax {
		t.Fatalf("DepthHist disagrees with Stats: %+v vs %+v", hist, st)
	}
	if p99 := hist.Quantile(0.99); p99 > 8 {
		t.Fatalf("p99 probe depth %v exceeds the displacement bound", p99)
	}
}

func TestTablePreSizedNeverMigrates(t *testing.T) {
	// The reassembly table is built with hint == its population cap and
	// must never start a migration, even under insert/delete churn that
	// accumulates tombstones (a grow purging tombstones resolves at the
	// same size, via finishMigration on the next grow — but the cheap
	// invariant worth pinning is that lookups stay correct throughout).
	tab := New[uint64, int](64, ident)
	for round := 0; round < 200; round++ {
		for i := uint64(0); i < 64; i++ {
			tab.Insert(uint64(round)<<8|i, round)
		}
		for i := uint64(0); i < 64; i++ {
			if !tab.Delete(uint64(round)<<8 | i) {
				t.Fatalf("round %d: Delete(%d) missed", round, i)
			}
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after churn, want 0", tab.Len())
	}
}

func TestTableAdversarialHash(t *testing.T) {
	tab := New[uint64, int](0, awfulHash)
	const n = 4096
	for i := uint64(0); i < n; i++ {
		tab.Insert(i, int(i))
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tab.Lookup(i)
		if !ok || v != int(i) {
			t.Fatalf("adversarial hash lost key %d (=%d,%v)", i, v, ok)
		}
	}
}

func TestTableRangeWithDelete(t *testing.T) {
	tab := New[uint64, int](0, ident)
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		tab.Insert(i, int(i))
	}
	seen := map[uint64]bool{}
	tab.Range(func(k uint64, v int) bool {
		if seen[k] {
			t.Fatalf("Range visited %d twice", k)
		}
		seen[k] = true
		if k%3 == 0 {
			tab.Delete(k) // delete-during-Range is the tcpTickShard pattern
		}
		return true
	})
	if len(seen) != n {
		t.Fatalf("Range visited %d entries, want %d", len(seen), n)
	}
	want := 0
	for i := uint64(0); i < n; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if tab.Len() != want {
		t.Fatalf("Len after Range deletes = %d, want %d", tab.Len(), want)
	}
}

func TestTableRangeMidMigration(t *testing.T) {
	// Arrange for an in-flight migration (old array non-empty), then
	// verify Range still sees every entry exactly once.
	tab := New[uint64, int](0, ident)
	n := 0
	for tab.old.groups == 0 || n < 50 {
		tab.Insert(uint64(n), n)
		n++
		if n > 1_000_000 {
			t.Fatal("never entered migration")
		}
	}
	if tab.old.groups == 0 {
		// The last inserts may have drained it; push until mid-flight.
		for tab.old.groups == 0 {
			tab.Insert(uint64(n), n)
			n++
		}
	}
	seen := map[uint64]bool{}
	tab.Range(func(k uint64, v int) bool {
		if seen[k] {
			t.Fatalf("mid-migration Range visited %d twice", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("mid-migration Range saw %d entries, want %d", len(seen), n)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache[int, string](3, PolicyLRU, 1)
	c.Insert(1, "a")
	c.Insert(2, "b")
	c.Insert(3, "c")
	c.Lookup(1) // refresh 1: order 1,3,2
	c.Insert(4, "d")
	// 2 was least recent: evicted.
	if _, ok := c.Lookup(2); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Lookup(k); !ok {
			t.Fatalf("LRU evicted the wrong entry (%d gone)", k)
		}
	}
}

func TestCacheFIFOOrder(t *testing.T) {
	c := NewCache[int, string](3, PolicyFIFO, 1)
	c.Insert(1, "a")
	c.Insert(2, "b")
	c.Insert(3, "c")
	c.Lookup(1) // FIFO: hit must NOT refresh
	c.Insert(4, "d")
	// 1 was the oldest insertion: evicted despite the recent hit.
	if _, ok := c.Lookup(1); ok {
		t.Fatal("FIFO refreshed on hit")
	}
	for _, k := range []int{2, 3, 4} {
		if _, ok := c.Lookup(k); !ok {
			t.Fatalf("FIFO evicted the wrong entry (%d gone)", k)
		}
	}
}

func TestCacheRandomDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []int {
		c := NewCache[int, int](4, PolicyRandom, seed)
		for i := 0; i < 64; i++ {
			c.Insert(i, i)
		}
		return c.Keys()
	}
	a, b := run(7), run(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if fmt.Sprint(run(7)) == fmt.Sprint(run(8)) {
		t.Fatal("different seeds produced identical eviction patterns (suspicious)")
	}
}

func TestCacheInvalidate(t *testing.T) {
	for _, p := range Policies() {
		c := NewCache[int, int](4, p, 3)
		for i := 1; i <= 4; i++ {
			c.Insert(i, i)
		}
		c.Invalidate(2)
		if _, ok := c.Lookup(2); ok {
			t.Fatalf("%v: Invalidate left the entry", p)
		}
		if c.Len() != 3 {
			t.Fatalf("%v: Len = %d after Invalidate, want 3", p, c.Len())
		}
		c.Invalidate(99) // absent: no-op
		if c.Len() != 3 {
			t.Fatalf("%v: Invalidate(absent) changed Len", p)
		}
		// The freed slot is reused without eviction.
		evBefore := c.Stats().Evictions
		c.Insert(5, 5)
		if c.Stats().Evictions != evBefore {
			t.Fatalf("%v: insert into freed slot evicted", p)
		}
	}
}

func TestCacheStatsAndHitRate(t *testing.T) {
	c := NewCache[int, int](2, PolicyLRU, 1)
	c.Insert(1, 1)
	c.Lookup(1)
	c.Lookup(1)
	c.Lookup(2)
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", s)
	}
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("HitRate = %v, want 2/3", got)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Fatal("empty HitRate not 0")
	}
	if NewCache[int, int](0, PolicyLRU, 0).Cap() != DefaultCacheSize {
		t.Fatal("default capacity not applied")
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{PolicyLRU: "lru", PolicyFIFO: "fifo", PolicyRandom: "random"}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Policy(99).String() != "unknown" {
		t.Fatal("unknown policy name")
	}
}
