package ldlp

import (
	"ldlp/internal/checksum"
	"ldlp/internal/layout"
	"ldlp/internal/memtrace"
	"ldlp/internal/sim"
	"ldlp/internal/stats"
	"ldlp/internal/tcpmodel"
	"ldlp/internal/traffic"
)

// This file exposes the paper's evaluation and measurement machinery.

// SimConfig parameterizes one synthetic-stack simulation run (§4's
// five-layer stack on the modeled machine).
type SimConfig = sim.Config

// SimResult summarizes one run (latency, misses per message, drops,
// batch sizes).
type SimResult = sim.Result

// SweepOptions controls figure sweeps (seeds, duration, message size).
type SweepOptions = sim.SweepOptions

// DefaultSimConfig returns the paper's §4 configuration for a discipline.
func DefaultSimConfig(d Discipline) SimConfig { return sim.DefaultConfig(d) }

// RunSim executes one simulation over a traffic source.
func RunSim(cfg SimConfig, src TrafficSource) SimResult {
	return sim.New(cfg).Run(src)
}

// PaperSweep is the published methodology (100 seeds × 1 s).
func PaperSweep() SweepOptions { return sim.PaperSweep() }

// QuickSweep is a cheap smoke-test variant.
func QuickSweep() SweepOptions { return sim.QuickSweep() }

// Table is a rendered sweep result (one row per x, named series).
type Table = stats.Table

// Figure5 regenerates cache misses/message vs arrival rate (Poisson).
func Figure5(opts SweepOptions) *Table { return sim.Figure5(opts) }

// Figure6 regenerates latency vs arrival rate (Poisson).
func Figure6(opts SweepOptions) *Table { return sim.Figure6(opts) }

// Figure7 regenerates latency vs CPU clock (self-similar traffic).
func Figure7(opts SweepOptions) *Table { return sim.Figure7(opts) }

// Figure8 regenerates the checksum cold/warm comparison of §5.1.
func Figure8(maxSize, step int) *Table { return checksum.Figure8(maxSize, step) }

// BatchCapAblation, QueueCostAblation, CacheSizeAblation and
// DisciplineAblation sweep the design choices DESIGN.md calls out.
func BatchCapAblation(opts SweepOptions, rate float64, caps []int) *Table {
	return sim.BatchCapAblation(opts, rate, caps)
}

// QueueCostAblation sweeps the per-layer queueing overhead.
func QueueCostAblation(opts SweepOptions, rate float64, costs []float64) *Table {
	return sim.QueueCostAblation(opts, rate, costs)
}

// CacheSizeAblation sweeps the primary cache size (§6's question).
func CacheSizeAblation(opts SweepOptions, rate float64, sizes []int) *Table {
	return sim.CacheSizeAblation(opts, rate, sizes)
}

// DisciplineAblation compares conventional, ILP and LDLP at one load.
func DisciplineAblation(opts SweepOptions, rate float64) *Table {
	return sim.DisciplineAblation(opts, rate)
}

// ShardedSimResult aggregates a modeled N-shard run (see RunShardedSim).
type ShardedSimResult = sim.ShardedResult

// RunShardedSim models an N-shard LDLP host on the paper's machine: N
// independent single-core simulations, each fed 1/N of a Poisson stream
// at the given total rate (the flow-hash design's no-shared-state limit).
func RunShardedSim(cfg SimConfig, shards int, rate float64, msgSize int, seed int64) ShardedSimResult {
	return sim.RunSharded(cfg, shards, rate, msgSize, seed)
}

// ShardScaling sweeps the modeled shard count at a fixed total load,
// reporting delivered throughput and speedup over one shard.
func ShardScaling(cfg SimConfig, opts SweepOptions, rate float64, shardCounts []int) *Table {
	return sim.ShardScaling(cfg, opts, rate, shardCounts)
}

// TrafficSource produces message arrivals.
type TrafficSource = traffic.Source

// Arrival is one message arrival (time, size).
type Arrival = traffic.Arrival

// NewPoisson returns a Poisson source of fixed-size messages.
func NewPoisson(rate float64, size int, seed int64) TrafficSource {
	return traffic.NewPoisson(rate, size, seed)
}

// NewSelfSimilar returns a Bellcore-shaped self-similar source.
func NewSelfSimilar(rate float64, seed int64) TrafficSource {
	return traffic.NewSelfSimilar(traffic.DefaultSelfSimilar(rate, seed))
}

// SynthesizeTrace generates Bellcore-format self-similar arrivals.
func SynthesizeTrace(rate, seconds float64, seed int64) []Arrival {
	return traffic.Synthesize(rate, seconds, seed)
}

// --- §2 measurement machinery ---

// WorkingSet is the per-class working-set summary of one trace analysis.
type WorkingSet = memtrace.ClassSet

// LayerWorkingSet is one Table 1 row.
type LayerWorkingSet = memtrace.LayerSet

// TraceAnalysis is the full §2 analysis of one receive+ACK iteration.
type TraceAnalysis = memtrace.Analysis

// WorkingSetReport models one NetBSD TCP receive & acknowledge iteration
// (§2's traced path) and analyzes it at the given cache line size,
// regenerating Table 1, the Figure 1 phase map and Table 2's phase
// totals.
func WorkingSetReport(messageLen int, lineSize int) *TraceAnalysis {
	cfg := tcpmodel.DefaultConfig()
	if messageLen > 0 {
		cfg.MessageLen = messageLen
	}
	m := tcpmodel.New(cfg)
	return memtrace.Analyze(m.Trace(), lineSize)
}

// LineSizeSweep regenerates Table 3: per-class working-set deltas at the
// given cache line sizes relative to the 32-byte baseline.
func LineSizeSweep(messageLen int, lineSizes []int) []memtrace.ClassSweep {
	cfg := tcpmodel.DefaultConfig()
	if messageLen > 0 {
		cfg.MessageLen = messageLen
	}
	m := tcpmodel.New(cfg)
	return memtrace.LineSweep(m.Trace(), lineSizes)
}

// PaperTable1 returns the published Table 1 for comparison.
func PaperTable1() []LayerWorkingSet { return tcpmodel.PaperTable1() }

// ChecksumSimple and ChecksumUnrolled are the real Internet-checksum
// implementations §5.1 compares (both used by the netstack).
func ChecksumSimple(data []byte) uint16 { return checksum.Simple(data) }

// ChecksumUnrolled is the 4.4BSD-style unrolled variant.
func ChecksumUnrolled(data []byte) uint16 { return checksum.Unrolled(data) }

// LayoutBenefit runs the §5.4 code-layout optimization over the modeled
// TCP trace and reports the working-set reduction (the paper estimates
// ≈25% of fetched instruction bytes never execute).
func LayoutBenefit(messageLen, lineSize int) layout.Benefit {
	cfg := tcpmodel.DefaultConfig()
	if messageLen > 0 {
		cfg.MessageLen = messageLen
	}
	return layout.Measure(tcpmodel.New(cfg).Trace(), lineSize)
}

// EstimateHurst estimates the Hurst parameter of an arrival stream by the
// variance-time method (≈0.5 for Poisson, 0.7–0.9 for Bellcore-like
// self-similar traffic).
func EstimateHurst(arrivals []Arrival, horizon, binSize float64) (float64, error) {
	return traffic.EstimateHurst(arrivals, horizon, binSize)
}
