module ldlp

go 1.24
