// Tracereplay: synthesize a Bellcore-shaped self-similar Ethernet trace
// (the stand-in for the Leland et al. October 1989 trace that drives
// Figure 7), write it in the trace file format, read it back, and replay
// it through the synthetic machine simulation at several CPU clock
// speeds — the full Figure 7 pipeline end to end.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ldlp"
	"ldlp/internal/core"
	"ldlp/internal/sim"
	"ldlp/internal/traffic"
)

func main() {
	const (
		rate    = 800.0 // mean packets/s (bursts reach far higher)
		seconds = 20.0
	)

	arrivals := ldlp.SynthesizeTrace(rate, seconds, 1996)
	fmt.Printf("synthesized %d arrivals over %.0fs (mean %.0f pkts/s)\n",
		len(arrivals), seconds, float64(len(arrivals))/seconds)

	// Round-trip through the Bellcore-style trace file format.
	path := filepath.Join(os.TempDir(), "ldlp-pOct89-like.trace")
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := traffic.WriteTrace(f, arrivals); err != nil {
		panic(err)
	}
	f.Close()
	f, err = os.Open(path)
	if err != nil {
		panic(err)
	}
	loaded, err := traffic.ReadTrace(f)
	f.Close()
	if err != nil {
		panic(err)
	}
	fmt.Printf("trace file %s: %d arrivals read back\n\n", path, len(loaded))

	// Burstiness fingerprint: peak 100ms bin vs the mean.
	bins := make([]int, int(seconds*10)+1)
	peak := 0
	for _, a := range loaded {
		b := int(a.Time * 10)
		bins[b]++
		if bins[b] > peak {
			peak = bins[b]
		}
	}
	fmt.Printf("burstiness: mean %.1f pkts per 100ms bin, peak %d (self-similar sources spike)\n\n",
		float64(len(loaded))/float64(len(bins)), peak)

	fmt.Println("latency vs CPU clock, replaying the trace (Figure 7 pipeline):")
	fmt.Printf("%6s %16s %16s\n", "MHz", "conventional", "ldlp")
	for _, mhz := range []float64{10, 20, 40, 80} {
		var lat [2]float64
		for i, d := range []core.Discipline{core.Conventional, core.LDLP} {
			cfg := sim.DefaultConfig(d)
			cfg.Machine.ClockHz = mhz * 1e6
			cfg.Duration = seconds
			res := sim.New(cfg).Run(traffic.NewTrace(loaded))
			lat[i] = res.Latency.Mean()
		}
		fmt.Printf("%6.0f %14.2fms %14.2fms\n", mhz, lat[0]*1e3, lat[1]*1e3)
	}
}
