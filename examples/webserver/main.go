// Webserver: the conclusion's scenario — "LDLP may improve performance
// for Internet WWW servers, where the data transfer unit is 512 bytes or
// less in most circumstances." A tiny HTTP/0.9-flavoured server
// (internal/httpd) runs over TCP-lite on the in-memory netstack; many
// clients issue small pipelined requests concurrently, and the server
// host's receive path runs under either discipline so the batching
// behaviour is visible.
package main

import (
	"fmt"
	"strings"

	"ldlp"
	"ldlp/internal/core"
	"ldlp/internal/httpd"
	"ldlp/internal/netstack"
)

const (
	serverPort = 80
	nClients   = 24
	nRequests  = 4 // per client
)

// documents are the small responses the paper's conclusion assumes.
var documents = map[string]string{
	"/":      "<html>welcome to the small-message web</html>",
	"/paper": "Blackwell, Speeding up Protocols for Small Messages, SIGCOMM 96",
	"/ldlp":  strings.Repeat("batching is blocking for protocols. ", 8),
}

func main() {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		run(d)
	}
}

func run(d core.Discipline) {
	n := ldlp.NewNet()
	serverHost := n.AddHost("server", ldlp.IPAddr{192, 168, 0, 1}, netstack.DefaultOptions(d))
	srv, err := httpd.NewServer(serverHost, serverPort, func(path string) (string, bool) {
		body, ok := documents[path]
		return body, ok
	})
	if err != nil {
		panic(err)
	}

	var clients []*httpd.Client
	for i := 0; i < nClients; i++ {
		h := n.AddHost(fmt.Sprintf("client%d", i),
			ldlp.IPAddr{192, 168, 1, byte(i + 1)}, netstack.DefaultOptions(d))
		clients = append(clients, httpd.Dial(h, serverHost, serverPort))
	}
	n.RunUntilIdle()
	srv.Poll() // accept everyone

	paths := []string{"/", "/paper", "/ldlp", "/missing"}
	responses, notFound := 0, 0
	for round := 0; round < nRequests; round++ {
		// All clients fire in the same instant: a burst of small messages
		// at the server — LDLP's home turf.
		for i, c := range clients {
			c.Get(paths[(i+round)%len(paths)])
		}
		for pumpRound := 0; pumpRound < 6; pumpRound++ {
			n.RunUntilIdle()
			srv.Poll()
			n.RunUntilIdle()
			for _, c := range clients {
				c.Poll()
			}
		}
		n.Tick(0.01) // flush delayed ACKs

		drain := func() {
			for _, c := range clients {
				for {
					r, ok := c.Next()
					if !ok {
						break
					}
					responses++
					if strings.HasPrefix(r.Status, "404") {
						notFound++
					}
				}
			}
		}
		drain()
		if round == nRequests-1 {
			// Settle: retransmission timers and delayed ACKs flush any
			// responses still in flight.
			for settle := 0; settle < 10 && responses < nClients*nRequests; settle++ {
				n.Tick(0.25)
				srv.Poll()
				n.RunUntilIdle()
				for _, c := range clients {
					c.Poll()
				}
				drain()
			}
		}
	}

	c := serverHost.Counters
	fmt.Printf("[%v] %d requests -> %d responses (%d not-found); "+
		"fast-path %d/%d segments; ACKs %d (delayed-ack rule); "+
		"largest rx batch %d, largest tx batch %d\n",
		d, nClients*nRequests, responses, notFound,
		c.TCPFastPath, c.TCPFastPath+c.TCPSlowPath, c.AcksSent,
		serverHost.StackStats().LargestBatch, c.TxMaxBatch)
	if responses != nClients*nRequests {
		panic("lost responses")
	}
}
