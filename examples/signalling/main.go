// Signalling: run the Q.93B-flavoured connection setup/teardown protocol
// over the in-memory netstack between a user and a network agent (with a
// peak-rate admission policy), then evaluate the paper's §1 performance
// goal — 10 000 setup/teardown pairs per second at 100 µs processing
// latency — on the modeled 100 MHz machine under both disciplines.
package main

import (
	"fmt"

	"ldlp"
	"ldlp/internal/signal"
	"ldlp/internal/sim"
	"ldlp/internal/traffic"
)

func main() {
	fmt.Println("== Functional: call setup/teardown over the netstack ==")
	n := ldlp.NewNet()
	hu := n.AddHost("user", ldlp.IPAddr{10, 0, 0, 1}, ldlp.DefaultHostOptions(ldlp.LDLP))
	hn := n.AddHost("switch", ldlp.IPAddr{10, 0, 0, 2}, ldlp.DefaultHostOptions(ldlp.LDLP))
	user, err := ldlp.NewSignalAgent(hu, 0x1001)
	if err != nil {
		panic(err)
	}
	network, err := ldlp.NewSignalAgent(hn, 0x2002)
	if err != nil {
		panic(err)
	}
	// Admission: reject calls asking for more than 10k cells/s of peak.
	network.Admission = func(m *ldlp.SignalMessage) bool { return m.PeakCells <= 10000 }

	pump := func() {
		for i := 0; i < 8; i++ {
			n.RunUntilIdle()
			user.Poll()
			network.Poll()
		}
	}

	modest := user.Dial(hn.IP(), 0x2002, 353)
	greedy := user.Dial(hn.IP(), 0x2002, 99999)
	pump()
	fmt.Printf("modest call (353 cells/s):  %v\n", modest.State())
	fmt.Printf("greedy call (99999 cells/s): %v (rejected by admission)\n", greedy.State())

	// A burst of setups: the network-side LDLP stack batches them.
	var calls []*ldlp.SignalCall
	for i := 0; i < 30; i++ {
		calls = append(calls, user.Dial(hn.IP(), 0x2002, uint32(100+i)))
	}
	pump()
	active := 0
	for _, c := range calls {
		if c.State() == ldlp.CallActive {
			active++
		}
	}
	fmt.Printf("burst of 30 setups: %d active; switch's largest receive batch: %d frames\n",
		active, hn.StackStats().LargestBatch)
	for _, c := range calls {
		c.Hangup()
	}
	modest.Hangup()
	pump()
	fmt.Printf("after hangups: %d active calls, %d completed at the switch\n\n",
		network.ActiveCalls(), network.Stats.CallsCompleted)

	fmt.Println("== Cross-country: a call through a chain of transit switches ==")
	transitDemo()

	fmt.Println("== Performance: the §1 goal on the modeled 100 MHz machine ==")
	offered := float64(signal.GoalPairsPerSec * signal.MessagesPerPair)
	for _, d := range []ldlp.Discipline{ldlp.Conventional, ldlp.LDLP} {
		cfg := signal.SimConfig(d)
		cfg.Duration = 1
		res := sim.New(cfg).Run(traffic.NewPoisson(offered, signal.MessageBytes, 7))
		proc := res.BusyFrac * cfg.Duration / float64(res.Processed)
		fmt.Printf("%-14s processing %6.1fµs/msg  total latency %9.1fµs  drops %5d/%d  mean batch %.1f\n",
			d, proc*1e6, res.Latency.Mean()*1e6, res.Dropped, res.Offered, res.MeanBatch)
	}
	fmt.Printf("goal: ≤%.0fµs processing per message at %d pairs/s\n",
		signal.GoalLatency*1e6, signal.GoalPairsPerSec)
}

// transitDemo routes a call through 10 transit switches (§1: "a
// cross-country connection might pass through 10 to 20 switches").
func transitDemo() {
	const hops = 10
	n := ldlp.NewNet()
	total := hops + 2
	agents := make([]*ldlp.SignalAgent, total)
	ips := make([]ldlp.IPAddr, total)
	for i := 0; i < total; i++ {
		ips[i] = ldlp.IPAddr{10, 20, 0, byte(i + 1)}
		h := n.AddHost(fmt.Sprintf("sw%d", i), ips[i], ldlp.DefaultHostOptions(ldlp.LDLP))
		a, err := ldlp.NewSignalAgent(h, uint32(5000+i))
		if err != nil {
			panic(err)
		}
		agents[i] = a
	}
	calleeAddr := uint32(5000 + total - 1)
	for i := 1; i < total-1; i++ {
		next := ips[i+1]
		agents[i].Route = func(called uint32) (ldlp.IPAddr, bool) {
			return next, called == calleeAddr
		}
	}
	call := agents[0].Dial(ips[1], calleeAddr, 353)
	for round := 0; round < 6*total; round++ {
		n.RunUntilIdle()
		for _, a := range agents {
			a.Poll()
		}
	}
	transits := int64(0)
	for _, a := range agents {
		transits += a.Stats.TransitSetups
	}
	fmt.Printf("call across %d switches: %v (transit setups: %d)\n", hops, call.State(), transits)
	call.Hangup()
	for round := 0; round < 6*total; round++ {
		n.RunUntilIdle()
		for _, a := range agents {
			a.Poll()
		}
	}
	fmt.Printf("after hangup: far end active calls = %d\n\n", agents[total-1].ActiveCalls())
}
