// Dnsburst: DNS is the first protocol §1 of the paper names among the
// small-message protocols "ubiquitous in the Internet". A busy
// authoritative server answers bursts of ~30-byte queries with ~60-byte
// responses — code locality is everything, payload movement is nothing.
//
// This example runs a real (mini) DNS server over the netstack, fires
// query bursts from many stub resolvers, and shows the server's LDLP
// receive path batching them; then it models the same server on the
// paper's 100 MHz machine to show the throughput difference the batching
// buys.
package main

import (
	"fmt"

	"ldlp"
	"ldlp/internal/core"
	"ldlp/internal/dns"
	"ldlp/internal/netstack"
	"ldlp/internal/sim"
	"ldlp/internal/traffic"
)

const stubs = 40

func main() {
	fmt.Println("== Functional: burst of lookups at an authoritative server ==")
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		runBurst(d)
	}

	fmt.Println("\n== Modeled: the same server on the paper's 100 MHz machine ==")
	// A DNS transaction is two small messages; model the server's receive
	// path as the synthetic signalling-sized stack at increasing query
	// rates.
	for _, qps := range []float64{5000, 15000, 25000} {
		fmt.Printf("at %6.0f queries/s: ", qps)
		for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
			cfg := sim.DefaultConfig(d)
			cfg.Layers = 4 // driver, ip, udp, dns
			cfg.LayerCode = 5120
			cfg.IssueFixed = 600 // name parse + table lookup
			cfg.Duration = 0.5
			res := sim.New(cfg).Run(traffic.NewPoisson(qps, 64, 7))
			fmt.Printf(" %s: %7.0fµs lat, %4.1f%% lost;", d, res.Latency.Mean()*1e6,
				100*float64(res.Dropped)/float64(res.Offered))
		}
		fmt.Println()
	}
}

func runBurst(d core.Discipline) {
	n := ldlp.NewNet()
	serverIP := ldlp.IPAddr{192, 0, 2, 53}
	hs := n.AddHost("ns", serverIP, netstack.DefaultOptions(d))
	srv, err := dns.NewServer(hs)
	if err != nil {
		panic(err)
	}
	srv.Add("www.example.com", ldlp.IPAddr{192, 0, 2, 80})
	srv.Add("api.example.com", ldlp.IPAddr{192, 0, 2, 81})

	var resolvers []*dns.Resolver
	var lookups []*dns.Lookup
	names := []string{"www.example.com", "api.example.com", "gone.example.com"}
	for i := 0; i < stubs; i++ {
		hc := n.AddHost("stub", ldlp.IPAddr{10, 8, 0, byte(i + 1)}, netstack.DefaultOptions(d))
		r, err := dns.NewResolver(hc, 4000, serverIP)
		if err != nil {
			panic(err)
		}
		resolvers = append(resolvers, r)
		lookups = append(lookups, r.Resolve(names[i%len(names)]))
	}
	for i := 0; i < 10; i++ {
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		for _, r := range resolvers {
			r.Poll()
		}
	}
	resolved, nx := 0, 0
	for _, lk := range lookups {
		switch {
		case lk.Done && lk.Err == nil:
			resolved++
		case lk.Done:
			nx++
		}
	}
	fmt.Printf("[%v] %d stubs: %d resolved, %d NXDOMAIN; server answered %d; "+
		"largest receive batch %d frames\n",
		d, stubs, resolved, nx, srv.Answered, hs.StackStats().LargestBatch)
}
