// Nfsclient: §1 observes that "all except two messages in NFS" are
// signalling-sized. This example runs the NFS-lite file service over
// Sun-RPC-style calls on the netstack: a burst of clients doing
// LOOKUP/GETATTR/READ/WRITE (all small messages), with frame loss
// injected to show the retry path and the server's duplicate-request
// cache keeping a retransmitted WRITE from applying twice.
package main

import (
	"fmt"
	"math/rand"

	"ldlp"
	"ldlp/internal/core"
	"ldlp/internal/netstack"
	"ldlp/internal/rpc"
)

const (
	clients = 16
	port    = 2049
)

func main() {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		run(d)
	}
}

func run(d core.Discipline) {
	n := ldlp.NewNet()
	serverIP := ldlp.IPAddr{192, 0, 3, 1}
	hs := n.AddHost("nfs", serverIP, netstack.DefaultOptions(d))
	srv, err := rpc.NewServer(hs, port)
	if err != nil {
		panic(err)
	}
	fs := rpc.NewFileServer(srv)
	motd := fs.Create("motd", []byte("welcome to the small-message filesystem"))
	logFH := fs.Create("audit.log", nil)

	var cls []*rpc.Client
	for i := 0; i < clients; i++ {
		hc := n.AddHost("c", ldlp.IPAddr{10, 9, 2, byte(i + 1)}, netstack.DefaultOptions(d))
		c, err := rpc.NewClient(hc, 800, serverIP, port)
		if err != nil {
			panic(err)
		}
		c.RetryInterval = 0.3
		cls = append(cls, c)
	}

	// 10% loss in both directions: the retry machinery earns its keep.
	rng := rand.New(rand.NewSource(7))
	n.Loss = func(dst ldlp.IPAddr, data []byte) bool { return rng.Intn(100) < 10 }

	// Every client: LOOKUP motd, GETATTR, READ it, then WRITE one audit
	// byte at its own offset (non-idempotent without the dup cache).
	var pend []*rpc.Pending
	for i, c := range cls {
		pend = append(pend,
			c.Call(rpc.NFSProgram, rpc.ProcLookup, rpc.LookupArgs("motd")),
			c.Call(rpc.NFSProgram, rpc.ProcGetAttr, rpc.GetAttrArgs(motd)),
			c.Call(rpc.NFSProgram, rpc.ProcRead, rpc.ReadArgs(motd, 0, 64)),
			c.Call(rpc.NFSProgram, rpc.ProcWrite, rpc.WriteArgs(logFH, uint32(i), []byte{byte('a' + i)})),
		)
	}
	for round := 0; round < 60; round++ {
		n.Tick(0.11)
		srv.Poll()
		n.RunUntilIdle()
		outstanding := 0
		for _, c := range cls {
			c.Tick()
			c.Poll()
			outstanding += c.Outstanding()
		}
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		for _, c := range cls {
			c.Poll()
		}
		if outstanding == 0 {
			break
		}
	}

	ok, failed := 0, 0
	for _, p := range pend {
		if p.Done && p.Err == nil {
			ok++
		} else {
			failed++
		}
	}
	var retries int64
	for _, c := range cls {
		retries += c.Retries
	}
	fmt.Printf("[%v] %d calls: %d ok, %d failed; client retries %d; "+
		"server executed %d writes (duplicates answered from cache: %d)\n",
		d, len(pend), ok, failed, retries, fs.Writes, srv.Duplicates)
	if fs.Writes > int64(clients) {
		panic("a retransmitted WRITE was re-executed!")
	}
}
