// Quickstart: build a protocol stack with the public API and watch the
// three disciplines of Figure 2 schedule the same messages differently,
// then run the paper's synthetic machine simulation at one load to see
// why the LDLP order wins.
package main

import (
	"fmt"

	"ldlp"
)

// buildStack assembles a four-layer pass-through stack that logs the
// processing order.
func buildStack(d ldlp.Discipline, log *[]string) *ldlp.Stack[int] {
	s := ldlp.NewStack[int](ldlp.Options{Discipline: d, BatchLimit: 8})
	names := []string{"driver", "ip", "transport", "app"}
	prev := (*ldlp.Layer[int])(nil)
	for i, name := range names {
		i, name := i, name
		l := s.AddLayer(name, func(m int, emit ldlp.Emit[int]) {
			*log = append(*log, fmt.Sprintf("%s(m%d)", name, m))
			if i+1 < len(names) {
				emit(s.Layers()[i+1], m)
			} else {
				emit(nil, m)
			}
		})
		if prev != nil {
			s.Link(prev, l)
		}
		prev = l
	}
	return s
}

func main() {
	fmt.Println("== Scheduling order (Figure 2) ==")
	for _, d := range []ldlp.Discipline{ldlp.Conventional, ldlp.LDLP} {
		var log []string
		s := buildStack(d, &log)
		for m := 1; m <= 3; m++ {
			if err := s.Inject(m); err != nil {
				panic(err)
			}
		}
		s.Run()
		fmt.Printf("%-14s %v\n", d.String()+":", log)
	}

	fmt.Println("\n== Why the order matters (the paper's machine, 6000 msgs/s) ==")
	for _, d := range []ldlp.Discipline{ldlp.Conventional, ldlp.ILP, ldlp.LDLP} {
		cfg := ldlp.DefaultSimConfig(d)
		cfg.Duration = 0.5
		res := ldlp.RunSim(cfg, ldlp.NewPoisson(6000, 552, 42))
		fmt.Printf("%-14s latency %9.1fµs   I-misses/msg %6.1f   D-misses/msg %5.1f   dropped %d/%d\n",
			d, res.Latency.Mean()*1e6, res.IMissesPerMsg, res.DMissesPerMsg, res.Dropped, res.Offered)
	}

	fmt.Println("\n== The §2 measurement in one line ==")
	a := ldlp.WorkingSetReport(552, 32)
	fmt.Printf("per-packet working set: %d bytes code + %d bytes read-only data\n",
		a.Code.Bytes, a.ReadOnly.Bytes)
	fmt.Printf("message: 552 bytes; 8KB cache: %d bytes — the code does not fit, the message is irrelevant\n", 8192)
}
